(* Tests for the queued (asynchronous) negotiation engine: equivalence
   with the synchronous engine on the paper scenarios, interleaved
   concurrent negotiations, quiescence on deadlock, and failure modes. *)

open Peertrust
open Peertrust_dlp
module Net = Peertrust_net
module Pobs = Peertrust_obs

let lit = Parser.parse_literal

let granted = function
  | Negotiation.Granted _ -> true
  | Negotiation.Denied _ -> false

let run_reactor session ~requester ~target goal =
  let reactor = Reactor.create session in
  let id = Reactor.submit reactor ~requester ~target goal in
  ignore (Reactor.run reactor);
  Reactor.outcome reactor id

(* ------------------------------------------------------------------ *)

let test_reactor_public_fact () =
  let session = Session.create () in
  ignore (Session.add_peer session ~program:{|info(42) $ true.|} "owner");
  ignore (Session.add_peer session "req");
  match run_reactor session ~requester:"req" ~target:"owner" (lit "info(X)") with
  | Negotiation.Granted [ (l, _) ] ->
      Alcotest.(check string) "instance" "info(42)" (Literal.to_string l)
  | _ -> Alcotest.fail "expected one instance"

let test_reactor_private_fact_denied () =
  let session = Session.create () in
  ignore (Session.add_peer session ~program:{|secret(1).|} "owner");
  ignore (Session.add_peer session "req");
  Alcotest.(check bool) "denied" false
    (granted (run_reactor session ~requester:"req" ~target:"owner" (lit "secret(X)")))

let test_reactor_counter_query () =
  let session = Session.create () in
  ignore
    (Session.add_peer session
       ~program:
         {|resource("r") $ cred(Requester) @ "CA" <-{true} haveIt("r").
           haveIt("r").
           cred(X) @ "CA" <- cred(X) @ "CA" @ X.|}
       "owner");
  ignore
    (Session.add_peer session
       ~program:{|cred("req") @ "CA" $ true signedBy ["CA"].|}
       "req");
  Alcotest.(check bool) "granted after queued counter-query" true
    (granted
       (run_reactor session ~requester:"req" ~target:"owner"
          (lit {|resource("r")|})))

let test_reactor_scenario1 () =
  let s = Scenario.scenario1 () in
  let outcome =
    run_reactor s.Scenario.s1_session ~requester:"Alice" ~target:"E-Learn"
      (lit {|discountEnroll(spanish101, "Alice")|})
  in
  Alcotest.(check bool) "scenario 1 granted via the queue" true (granted outcome)

let test_reactor_scenario2_free () =
  let s = Scenario.scenario2 () in
  let outcome =
    run_reactor s.Scenario.s2_session ~requester:"Bob" ~target:"E-Learn"
      (lit {|enroll(cs101, "Bob", "IBM", Email, 0)|})
  in
  Alcotest.(check bool) "scenario 2 free course granted" true (granted outcome)

let test_reactor_matches_sync_on_chains () =
  List.iter
    (fun depth ->
      List.iter
        (fun missing ->
          (* Synchronous run. *)
          let w1 = Scenario.policy_chain ~depth ?missing () in
          let sync =
            Negotiation.succeeded
              (Negotiation.request w1.Scenario.cw_session ~requester:"alice"
                 ~target:"bob" w1.Scenario.cw_goal)
          in
          (* Queued run on a fresh world. *)
          let w2 = Scenario.policy_chain ~depth ?missing () in
          let async =
            granted
              (run_reactor w2.Scenario.cw_session ~requester:"alice"
                 ~target:"bob" w2.Scenario.cw_goal)
          in
          Alcotest.(check bool)
            (Printf.sprintf "depth %d missing %s agree" depth
               (match missing with Some k -> string_of_int k | None -> "-"))
            sync async)
        [ None; Some 1; Some depth ])
    [ 1; 2; 4 ]

let test_reactor_concurrent_negotiations () =
  (* Several negotiations interleave over one queue; all resolve. *)
  let w = Scenario.fanout ~width:3 () in
  let session = w.Scenario.cw_session in
  let reactor = Reactor.create session in
  let r1 =
    Reactor.submit reactor ~requester:"alice" ~target:"bob" w.Scenario.cw_goal
  in
  (* A second, failing negotiation in the same world. *)
  let r2 =
    Reactor.submit reactor ~requester:"alice" ~target:"bob"
      (lit {|resource("does-not-exist")|})
  in
  (* And a sub-resource request directly for one credential of alice. *)
  let r3 =
    Reactor.submit reactor ~requester:"bob" ~target:"alice"
      (lit {|need1("alice") @ "CA"|})
  in
  ignore (Reactor.run reactor);
  Alcotest.(check bool) "main negotiation granted" true
    (granted (Reactor.outcome reactor r1));
  Alcotest.(check bool) "bogus resource denied" false
    (granted (Reactor.outcome reactor r2));
  Alcotest.(check bool) "credential request granted" true
    (granted (Reactor.outcome reactor r3));
  Alcotest.(check int) "nothing left parked" 0 (Reactor.parked_count reactor)

let test_reactor_marketplace_concurrent () =
  (* All marketplace goals submitted at once over one queue. *)
  let mp =
    Scenario.marketplace ~providers:2 ~learners:3 ~courses_per_provider:2 ()
  in
  let reactor = Reactor.create mp.Scenario.mp_session in
  let requests =
    List.map
      (fun (learner, provider, goal) ->
        Reactor.submit reactor ~requester:learner ~target:provider goal)
      mp.Scenario.mp_goals
  in
  ignore (Reactor.run reactor);
  List.iter
    (fun id ->
      Alcotest.(check bool) "granted" true
        (granted (Reactor.outcome reactor id)))
    requests;
  Alcotest.(check int) "no parked leftovers" 0 (Reactor.parked_count reactor)

let test_reactor_disclosure_message () =
  (* A pushed disclosure wakes parked goals. *)
  let session = Session.create () in
  ignore
    (Session.add_peer session
       ~program:
         {|resource("r") $ cred(Requester) @ "CA" <-{true} haveIt("r").
           haveIt("r").|}
       "owner");
  ignore (Session.add_peer session "alice");
  let reactor = Reactor.create session in
  let id =
    Reactor.submit reactor ~requester:"alice" ~target:"owner"
      (lit {|resource("r")|})
  in
  ignore (Reactor.run reactor);
  (* Denied: alice has no credential and no redirect path exists. *)
  Alcotest.(check bool) "denied without credential" false
    (granted (Reactor.outcome reactor id))

let test_reactor_deadlock_quiesces () =
  let session = Session.create () in
  ignore
    (Session.add_peer session
       ~program:
         {|a("o") $ b(Requester) @ "CA" <-{true} a("o").
           a("o") @ "CA" signedBy ["CA"].
           b(X) @ "CA" <- b(X) @ "CA" @ X.|}
       "owner");
  ignore
    (Session.add_peer session
       ~program:
         {|b("req") $ a(Requester) @ "CA" <-{true} b("req").
           b("req") @ "CA" signedBy ["CA"].
           a(X) @ "CA" <- a(X) @ "CA" @ X.|}
       "req");
  let reactor = Reactor.create session in
  let id = Reactor.submit reactor ~requester:"req" ~target:"owner" (lit {|a("o")|}) in
  let steps = Reactor.run reactor in
  Alcotest.(check bool) "terminates" true (steps < 1000);
  Alcotest.(check bool) "denied" false (granted (Reactor.outcome reactor id));
  Alcotest.(check int) "no goals left parked" 0 (Reactor.parked_count reactor)

let test_reactor_unreachable_target () =
  let session = Session.create () in
  ignore (Session.add_peer session ~program:{|info(1) $ true.|} "owner");
  ignore (Session.add_peer session "req");
  Net.Network.set_down session.Session.network "owner" true;
  match run_reactor session ~requester:"req" ~target:"owner" (lit "info(X)") with
  | Negotiation.Denied reason ->
      Alcotest.(check string) "structured reason" "unreachable: owner" reason;
      Alcotest.(check bool) "classified as transport denial" true
        (Negotiation.transport_denial reason)
  | Negotiation.Granted _ -> Alcotest.fail "down peer cannot grant"

let counter_query_world ?max_messages () =
  let session = Session.create ?max_messages () in
  ignore
    (Session.add_peer session
       ~program:
         {|resource("r") $ cred(Requester) @ "CA" <-{true} haveIt("r").
           haveIt("r").
           cred(X) @ "CA" <- cred(X) @ "CA" @ X.|}
       "owner");
  ignore
    (Session.add_peer session
       ~program:{|cred("req") @ "CA" $ true signedBy ["CA"].|}
       "req");
  session

let test_reactor_down_mid_negotiation () =
  (* The owner goes down after sending its counter-query: the requester's
     answer can no longer be delivered.  The reactor must count and trace
     the dropped reply (not lose it silently), and the negotiation must
     still terminate in a denial rather than hang. *)
  Pobs.Obs.reset_metrics ();
  let session = counter_query_world () in
  let reactor = Reactor.create session in
  let id =
    Reactor.submit reactor ~requester:"req" ~target:"owner"
      (lit {|resource("r")|})
  in
  (* Deliver the top-level query; the owner parks it and counter-queries. *)
  Alcotest.(check bool) "first event processed" true (Reactor.step reactor);
  Net.Network.set_down session.Session.network "owner" true;
  let steps = Reactor.run reactor in
  Alcotest.(check bool) "terminates" true (steps < 1000);
  Alcotest.(check bool) "denied" false (granted (Reactor.outcome reactor id));
  Alcotest.(check int) "nothing left parked" 0 (Reactor.parked_count reactor);
  let snapshot = Pobs.Obs.snapshot () in
  Alcotest.(check bool) "dropped reply counted" true
    (Pobs.Registry.counter_value snapshot "reactor.drops" > 0)

let test_reactor_duplicate_answers_idempotent () =
  (* Every delivery duplicated: the duplicate Answer dispatch must be
     deduplicated and the outcome must match the fault-free run. *)
  Pobs.Obs.reset_metrics ();
  let session = counter_query_world () in
  Net.Network.set_faults session.Session.network
    (Net.Faults.create ~duplicate:1.0 ~seed:11L ());
  Alcotest.(check bool) "granted despite duplication" true
    (granted
       (run_reactor session ~requester:"req" ~target:"owner"
          (lit {|resource("r")|})));
  let snapshot = Pobs.Obs.snapshot () in
  Alcotest.(check bool) "duplicates deduplicated on dispatch" true
    (Pobs.Registry.counter_value snapshot "reactor.dup_deliveries" > 0)

let test_reactor_budget_denies_all_parked () =
  (* Two top-level goals are parked when the budget trips; both must be
     settled with the structured budget denial, not left unresolved. *)
  let session = counter_query_world ~max_messages:3 () in
  let reactor = Reactor.create session in
  let r1 =
    Reactor.submit reactor ~requester:"req" ~target:"owner"
      (lit {|resource("r")|})
  in
  let r2 =
    Reactor.submit reactor ~requester:"req" ~target:"owner"
      (lit {|resource("r")|})
  in
  ignore (Reactor.run reactor);
  List.iter
    (fun id ->
      match Reactor.outcome reactor id with
      | Negotiation.Denied reason ->
          Alcotest.(check string) "budget reason" "message budget exhausted"
            reason;
          Alcotest.(check bool) "classified as budget" true
            (Negotiation.transport_denial reason)
      | Negotiation.Granted _ -> Alcotest.fail "should hit the budget")
    [ r1; r2 ]

let test_reactor_negotiate_convenience () =
  let session = counter_query_world () in
  let report =
    Reactor.negotiate session ~requester:"req" ~target:"owner"
      (lit {|resource("r")|})
  in
  Alcotest.(check bool) "granted" true
    (granted report.Negotiation.outcome);
  Alcotest.(check bool) "messages measured" true
    (report.Negotiation.messages > 0)

let test_reactor_message_budget () =
  let session = Session.create ~max_messages:2 () in
  ignore
    (Session.add_peer session
       ~program:
         {|resource("r") $ cred(Requester) @ "CA" <-{true} haveIt("r").
           haveIt("r").
           cred(X) @ "CA" <- cred(X) @ "CA" @ X.|}
       "owner");
  ignore
    (Session.add_peer session
       ~program:{|cred("req") @ "CA" $ true signedBy ["CA"].|}
       "req");
  let reactor = Reactor.create session in
  let id =
    Reactor.submit reactor ~requester:"req" ~target:"owner" (lit {|resource("r")|})
  in
  ignore (Reactor.run reactor);
  match Reactor.outcome reactor id with
  | Negotiation.Denied "message budget exhausted" -> ()
  | Negotiation.Denied r -> Alcotest.failf "unexpected denial: %s" r
  | Negotiation.Granted _ -> Alcotest.fail "should hit the budget"

let test_reactor_result_before_run () =
  let session = Session.create () in
  ignore (Session.add_peer session ~program:{|info(1) $ true.|} "owner");
  ignore (Session.add_peer session "req");
  let reactor = Reactor.create session in
  let id = Reactor.submit reactor ~requester:"req" ~target:"owner" (lit "info(X)") in
  Alcotest.(check bool) "unresolved before run" true
    (Reactor.result reactor id = None);
  ignore (Reactor.run reactor);
  Alcotest.(check bool) "resolved after run" true
    (Reactor.result reactor id <> None)

let test_reactor_chain_discovery () =
  (* Deep chains work through the queue as well. *)
  let session, root, _ =
    Chain.linear_world ~depth:6 ~pred:"member" ~subject:"sam" ()
  in
  ignore (Session.add_peer session "client");
  let outcome =
    run_reactor session ~requester:"client" ~target:root
      (lit {|member("sam")|})
  in
  Alcotest.(check bool) "chain resolves through the queue" true (granted outcome);
  let client = Session.peer session "client" in
  Alcotest.(check bool) "certificates relayed" true
    (Hashtbl.length client.Peer.certs >= 7)

(* ------------------------------------------------------------------ *)
(* Answer cache: unit behaviour (TTL, capacity, invalidation, watchers)
   and the reactor integration (warm cross-session runs, batching). *)

let dummy_answer inst =
  { Answer_cache.instances = [ (lit inst, None) ]; certs = [] }

let find_some c ~now ~asker ~owner goal =
  Option.is_some (Answer_cache.find c ~now ~asker ~owner (lit goal))

let test_cache_ttl_expiry () =
  let c = Answer_cache.create ~ttl:10 () in
  Answer_cache.store c ~now:0 ~asker:"a" ~owner:"o" (lit "p(X)")
    (dummy_answer "p(1)");
  Alcotest.(check bool) "live before the deadline" true
    (find_some c ~now:9 ~asker:"a" ~owner:"o" "p(X)");
  Alcotest.(check bool) "expired at the deadline" false
    (find_some c ~now:10 ~asker:"a" ~owner:"o" "p(X)");
  Alcotest.(check int) "expiry counted as eviction" 1
    (Answer_cache.evictions c);
  Alcotest.(check int) "the live lookup is a hit" 1 (Answer_cache.hits c);
  Alcotest.(check int) "the expired lookup is a miss" 1
    (Answer_cache.misses c);
  Alcotest.(check int) "expired entry removed" 0 (Answer_cache.length c)

let test_cache_variant_keying () =
  let c = Answer_cache.create () in
  Answer_cache.store c ~now:0 ~asker:"a" ~owner:"o" (lit "p(X)")
    (dummy_answer "p(1)");
  Alcotest.(check bool) "alpha-variant goal hits" true
    (find_some c ~now:1 ~asker:"a" ~owner:"o" "p(Zz)");
  Alcotest.(check bool) "different asker misses" false
    (find_some c ~now:1 ~asker:"b" ~owner:"o" "p(X)");
  Alcotest.(check bool) "different owner misses" false
    (find_some c ~now:1 ~asker:"a" ~owner:"o2" "p(X)");
  Alcotest.(check bool) "more specific goal misses" false
    (find_some c ~now:1 ~asker:"a" ~owner:"o" "p(1)")

let test_cache_capacity_eviction () =
  let c = Answer_cache.create ~capacity:2 () in
  Answer_cache.store c ~now:0 ~asker:"a" ~owner:"o" (lit "p1(X)")
    (dummy_answer "p1(1)");
  Answer_cache.store c ~now:1 ~asker:"a" ~owner:"o" (lit "p2(X)")
    (dummy_answer "p2(1)");
  Answer_cache.store c ~now:2 ~asker:"a" ~owner:"o" (lit "p3(X)")
    (dummy_answer "p3(1)");
  Alcotest.(check int) "capacity bounds the table" 2 (Answer_cache.length c);
  Alcotest.(check int) "one eviction" 1 (Answer_cache.evictions c);
  Alcotest.(check bool) "oldest entry evicted" false
    (find_some c ~now:3 ~asker:"a" ~owner:"o" "p1(X)");
  Alcotest.(check bool) "newer entries survive" true
    (find_some c ~now:3 ~asker:"a" ~owner:"o" "p2(X)"
    && find_some c ~now:3 ~asker:"a" ~owner:"o" "p3(X)")

let test_cache_invalidation () =
  let c = Answer_cache.create () in
  Answer_cache.store c ~now:0 ~asker:"a" ~owner:"visa" (lit "ok(X)")
    (dummy_answer "ok(1)");
  Answer_cache.store c ~now:0 ~asker:"b" ~owner:"visa" (lit "ok(X)")
    (dummy_answer "ok(1)");
  Answer_cache.store c ~now:0 ~asker:"a" ~owner:"other" (lit "ok(X)")
    (dummy_answer "ok(1)");
  Alcotest.(check int) "goal invalidation hits every asker" 2
    (Answer_cache.invalidate_goal c ~owner:"visa" (lit "ok(Y)"));
  Alcotest.(check bool) "other owner untouched" true
    (find_some c ~now:1 ~asker:"a" ~owner:"other" "ok(X)");
  Alcotest.(check int) "owner invalidation sweeps the rest" 1
    (Answer_cache.invalidate_owner c "other");
  Alcotest.(check int) "invalidations counted" 3
    (Answer_cache.invalidations c);
  Alcotest.(check int) "cache empty" 0 (Answer_cache.length c)

let test_cache_watch_accounts () =
  (* Revoking the VISA account at the owning peer drops every cached
     answer that peer produced (scenario 2's revocation hook). *)
  let s = Scenario.scenario2 () in
  let c = Answer_cache.create () in
  Answer_cache.watch_accounts c ~owner:"VISA" s.Scenario.s2_accounts;
  Answer_cache.store c ~now:0 ~asker:"E-Learn" ~owner:"VISA"
    (lit {|purchaseApproved("IBM", X)|})
    (dummy_answer {|purchaseApproved("IBM", 1000)|});
  Answer_cache.store c ~now:0 ~asker:"a" ~owner:"elsewhere" (lit "q(X)")
    (dummy_answer "q(1)");
  Externals.Accounts.revoke s.Scenario.s2_accounts ~account:"IBM";
  Alcotest.(check bool) "VISA answers invalidated" false
    (find_some c ~now:1 ~asker:"E-Learn" ~owner:"VISA"
       {|purchaseApproved("IBM", X)|});
  Alcotest.(check bool) "unrelated owner untouched" true
    (find_some c ~now:1 ~asker:"a" ~owner:"elsewhere" "q(X)");
  Alcotest.(check bool) "invalidation counted" true
    (Answer_cache.invalidations c > 0)

let test_cache_watch_peer () =
  let session = Session.create () in
  let owner = Session.add_peer session ~program:{|f(1) $ true.|} "owner" in
  let c = Answer_cache.create () in
  Answer_cache.watch_peer c owner;
  Answer_cache.store c ~now:0 ~asker:"req" ~owner:"owner" (lit "f(X)")
    (dummy_answer "f(1)");
  (* Learning a fact mid-negotiation is monotone and must NOT flush. *)
  Peer.add_rule owner (Parser.parse_rule "g(2).");
  Alcotest.(check bool) "add_rule keeps cached answers" true
    (find_some c ~now:1 ~asker:"req" ~owner:"owner" "f(X)");
  (* Replacing the KB is a real update and must flush. *)
  Peer.load_program owner {|f(3) $ true.|};
  Alcotest.(check bool) "load_program invalidates" false
    (find_some c ~now:1 ~asker:"req" ~owner:"owner" "f(X)")

let test_cache_warm_cross_session () =
  (* Scenario 1 negotiated twice on fresh sessions sharing one cache:
     the warm run answers entirely out of the cache and posts nothing. *)
  let cache = Answer_cache.create () in
  let config = { Reactor.default_config with Reactor.cache = Some cache } in
  let run () =
    let s = Scenario.scenario1 () in
    let net = s.Scenario.s1_session.Session.network in
    let reactor = Reactor.create ~config s.Scenario.s1_session in
    let id =
      Reactor.submit reactor ~requester:"Alice" ~target:"E-Learn"
        (Scenario.scenario1_goal ())
    in
    ignore (Reactor.run reactor);
    (granted (Reactor.outcome reactor id),
     Net.Stats.messages (Net.Network.stats net))
  in
  let ok_cold, posts_cold = run () in
  let ok_warm, posts_warm = run () in
  Alcotest.(check bool) "cold run granted" true ok_cold;
  Alcotest.(check bool) "warm run granted" true ok_warm;
  Alcotest.(check bool) "cold run used the wire" true (posts_cold > 0);
  Alcotest.(check int) "warm run posted nothing" 0 posts_warm;
  Alcotest.(check bool) "warm run hit the cache" true
    (Answer_cache.hits cache > 0)

let test_reactor_batching () =
  (* Same-tick sub-queries to one peer coalesce into a single Batch
     envelope: same outcome, fewer envelopes, batch summary on the wire.
     The release policy has two alternative rules, so one evaluation
     probes both credentials at the requester in the same tick. *)
  let posts net = Net.Stats.messages (Net.Network.stats net) in
  let run config =
    let session = Session.create () in
    ignore
      (Session.add_peer session
         ~program:
           {|resource("r") $ pass(Requester) <-{true} haveIt("r").
             haveIt("r").
             pass(X) <- c1(X) @ "CA" @ X.
             pass(X) <- c2(X) @ "CA" @ X.|}
         "owner");
    ignore
      (Session.add_peer session
         ~program:{|c2("req") @ "CA" $ true signedBy ["CA"].|}
         "req");
    let net = session.Session.network in
    let reactor = Reactor.create ?config session in
    let id =
      Reactor.submit reactor ~requester:"req" ~target:"owner"
        (lit {|resource("r")|})
    in
    ignore (Reactor.run reactor);
    (granted (Reactor.outcome reactor id), posts net, net)
  in
  let ok_plain, posts_plain, _ = run None in
  let ok_batch, posts_batch, batch_net =
    run (Some { Reactor.default_config with Reactor.batch = true })
  in
  Alcotest.(check bool) "plain granted" true ok_plain;
  Alcotest.(check bool) "batched granted" true ok_batch;
  Alcotest.(check bool)
    (Printf.sprintf "fewer envelopes (%d < %d)" posts_batch posts_plain)
    true
    (posts_batch < posts_plain);
  let is_batch e =
    String.length e.Net.Network.summary >= 5
    && String.equal (String.sub e.Net.Network.summary 0 5) "batch"
  in
  Alcotest.(check bool) "a batch envelope on the wire" true
    (List.exists is_batch (Net.Network.transcript batch_net))

(* ------------------------------------------------------------------ *)
(* Inbound guard: structural checks, admission control and the circuit
   breaker, driven directly with an explicit clock. *)

module Crypto = Peertrust_crypto

let guard_cfg =
  {
    Guard.defaults with
    Guard.rate = 3;
    rate_window = 8;
    quota = 100;
    quarantine_after = 2;
    violation_window = 64;
    quarantine_ticks = 10;
  }

let mk_guard () = Guard.create ~config:guard_cfg ~verify:(fun _ -> true) ()
let garbage = Net.Message.Raw "not a certificate"
let probe = Net.Message.Query { goal = lit "ping(1)" }

let test_guard_breaker_transitions () =
  let g = mk_guard () in
  let admit ~now p = Guard.admit g ~now ~from:"mal" ~target:"owner" p in
  let breaker () = Guard.breaker_state g ~from:"mal" ~target:"owner" in
  (* Two violations inside the window trip the breaker... *)
  (match admit ~now:0 garbage with
  | Guard.Reject (Guard.Malformed _) -> ()
  | _ -> Alcotest.fail "garbage must be rejected");
  ignore (admit ~now:1 garbage);
  (match breaker () with
  | Guard.Open { until } -> Alcotest.(check int) "open until" 11 until
  | _ -> Alcotest.fail "breaker should be open");
  Alcotest.(check (list (pair string string))) "pair listed as quarantined"
    [ ("owner", "mal") ] (Guard.quarantined g);
  (* ...everything is rejected while it is open... *)
  (match admit ~now:5 Net.Message.Ack with
  | Guard.Reject Guard.Quarantined -> ()
  | _ -> Alcotest.fail "quarantine must reject even Ack");
  (* ...a served quarantine moves to half-open, and a clean payload
     during probation closes it again... *)
  (match admit ~now:11 Net.Message.Ack with
  | Guard.Admit -> ()
  | _ -> Alcotest.fail "probation should admit a clean payload");
  Alcotest.(check bool) "closed after recovery" true (breaker () = Guard.Closed);
  (* ...and a violation during probation re-opens immediately. *)
  ignore (admit ~now:20 garbage);
  ignore (admit ~now:21 garbage);
  (match admit ~now:31 garbage with
  | Guard.Reject (Guard.Malformed _) -> ()
  | _ -> Alcotest.fail "half-open garbage must be judged, not waved in");
  match breaker () with
  | Guard.Open { until } -> Alcotest.(check int) "re-opened until" 41 until
  | _ -> Alcotest.fail "half-open violation must re-open"

let test_guard_rate_limit () =
  let g = mk_guard () in
  let admit ~now = Guard.admit g ~now ~from:"req" ~target:"owner" probe in
  for i = 1 to 3 do
    match admit ~now:0 with
    | Guard.Admit -> ()
    | _ -> Alcotest.failf "query %d is within the rate" i
  done;
  (match admit ~now:0 with
  | Guard.Reject Guard.Flooding -> ()
  | _ -> Alcotest.fail "fourth same-tick query must be rate-limited");
  (* Outside the sliding window the rate recovers. *)
  match admit ~now:20 with
  | Guard.Admit -> ()
  | _ -> Alcotest.fail "rate must recover after the window"

let test_guard_quota () =
  let g = mk_guard () in
  let remaining () = Guard.remaining_work g ~from:"req" ~target:"owner" in
  Alcotest.(check int) "full quota" 100 (remaining ());
  Guard.charge_work g ~from:"req" ~target:"owner" 100;
  Alcotest.(check int) "quota spent" 0 (remaining ());
  match Guard.admit g ~now:0 ~from:"req" ~target:"owner" probe with
  | Guard.Reject Guard.Quota_exhausted -> ()
  | _ -> Alcotest.fail "query beyond the quota must be rejected"

let test_guard_solicitation () =
  let g = mk_guard () in
  let answer =
    Net.Message.Answer { goal = lit "p(1)"; instances = []; certs = [] }
  in
  (match Guard.admit g ~now:0 ~from:"peer" ~target:"owner" answer with
  | Guard.Reject (Guard.Unsolicited _) -> ()
  | _ -> Alcotest.fail "spoofed answer must be rejected");
  (match
     Guard.admit g ~now:0 ~from:"peer" ~target:"owner"
       ~solicited:(fun _ -> `Outstanding)
       answer
   with
  | Guard.Admit -> ()
  | _ -> Alcotest.fail "solicited answer must be admitted");
  (match
     Guard.admit g ~now:0 ~from:"peer" ~target:"owner"
       ~solicited:(fun _ -> `Resolved)
       answer
   with
  | Guard.Stale _ -> ()
  | _ -> Alcotest.fail "late duplicate must be stale, not a violation")

let test_guard_bad_cert_and_bomb () =
  (* verify = always-false: any certificate is forged. *)
  let g = Guard.create ~config:guard_cfg ~verify:(fun _ -> false) () in
  let forged =
    {
      Crypto.Cert.serial = 9;
      rule = Parser.parse_rule {|c("x") @ "CA" signedBy ["CA"].|};
      not_before = 0;
      not_after = 10;
      signatures = [];
    }
  in
  let answer =
    Net.Message.Answer { goal = lit "p(1)"; instances = []; certs = [ forged ] }
  in
  (match
     Guard.admit g ~now:0 ~from:"peer" ~target:"owner"
       ~solicited:(fun _ -> `Outstanding)
       answer
   with
  | Guard.Reject (Guard.Bad_cert _) -> ()
  | _ -> Alcotest.fail "forged certificate must be rejected");
  (* A goal with an absurd authority chain is a delegation bomb. *)
  let deep =
    Literal.make "boom"
      ~auth:(List.init 40 (fun _ -> Term.str "peer"))
      []
  in
  match
    Guard.admit g ~now:0 ~from:"peer" ~target:"owner"
      (Net.Message.Query { goal = deep })
  with
  | Guard.Reject (Guard.Bomb _) -> ()
  | _ -> Alcotest.fail "delegation bomb must be rejected"

let test_classify_guard_denials () =
  let check_class reason expect =
    Alcotest.(check string) reason expect
      (Negotiation.denial_class_to_string (Negotiation.classify_denial reason));
    Alcotest.(check bool)
      (reason ^ ": guard denials are not transport denials")
      false
      (Negotiation.transport_denial reason)
  in
  check_class "quarantined: E-Learn" "quarantined";
  check_class "rate-limited: E-Learn" "rate-limited";
  check_class "quota: E-Learn" "quota";
  Alcotest.(check string) "policy fallback" "policy"
    (Negotiation.denial_class_to_string
       (Negotiation.classify_denial "release policy not satisfied"))

let test_dedup_bounded () =
  let d = Net.Dedup.create ~cap:4 in
  for i = 1 to 4 do
    Alcotest.(check bool) "fresh id not evicting" false (Net.Dedup.add d i)
  done;
  Alcotest.(check bool) "remembered" true (Net.Dedup.mem d 1);
  Alcotest.(check bool) "fifth id evicts the oldest" true (Net.Dedup.add d 5);
  Alcotest.(check bool) "oldest forgotten" false (Net.Dedup.mem d 1);
  Alcotest.(check bool) "newest remembered" true (Net.Dedup.mem d 5);
  Alcotest.(check int) "length capped" 4 (Net.Dedup.length d);
  Alcotest.(check int) "evictions counted" 1 (Net.Dedup.evictions d)

(* ------------------------------------------------------------------ *)
(* Distributed tabling: cyclic policies terminate with complete answer
   sets; the answer cache refuses premature (incomplete) stores. *)

let tabling_config =
  { Reactor.default_config with Reactor.tabling = true }

let run_tabled ?(config = tabling_config) session ~requester ~target goal =
  let reactor = Reactor.create ~config session in
  let id = Reactor.submit reactor ~requester ~target goal in
  ignore (Reactor.run reactor);
  (Reactor.outcome reactor id, reactor)

let sorted_instances = function
  | Negotiation.Granted instances ->
      List.map (fun (l, _) -> Literal.to_string l) instances
      |> List.sort_uniq String.compare
  | Negotiation.Denied reason -> [ "denied: " ^ reason ]

let expected_strings rw =
  List.map Literal.to_string rw.Scenario.rw_expected
  |> List.sort_uniq String.compare

let test_tabling_mutual_accreditation () =
  let rw = Scenario.mutual_accreditation () in
  let outcome, reactor =
    run_tabled rw.Scenario.rw_session ~requester:rw.Scenario.rw_requester
      ~target:rw.Scenario.rw_target rw.Scenario.rw_goal
  in
  Alcotest.(check (list string))
    "two-peer mutual accreditation completes" (expected_strings rw)
    (sorted_instances outcome);
  List.iter
    (fun (_, _, answers, status) ->
      Alcotest.(check string) "every table frozen" "complete" status;
      Alcotest.(check int) "every table holds the one answer" 1 answers)
    (Reactor.tabling_summary reactor)

let test_tabling_larger_ring () =
  let rw = Scenario.mutual_accreditation ~n:4 () in
  let outcome, reactor =
    run_tabled rw.Scenario.rw_session ~requester:rw.Scenario.rw_requester
      ~target:rw.Scenario.rw_target rw.Scenario.rw_goal
  in
  Alcotest.(check (list string))
    "four-peer ring completes" (expected_strings rw)
    (sorted_instances outcome);
  Alcotest.(check int) "one table per ring member" 4
    (List.length (Reactor.tabling_summary reactor))

let test_tabling_federation () =
  let rw = Scenario.federation ~clusters:3 ~size:2 () in
  let outcome, _ =
    run_tabled rw.Scenario.rw_session ~requester:rw.Scenario.rw_requester
      ~target:rw.Scenario.rw_target rw.Scenario.rw_goal
  in
  Alcotest.(check (list string))
    "federated SCCs complete in dependency order" (expected_strings rw)
    (sorted_instances outcome)

let test_tabling_off_cycle_denied () =
  (* The same cyclic world without tabling must still terminate — as a
     structured cycle/quiescence denial, not a hang. *)
  let rw = Scenario.mutual_accreditation () in
  let outcome, _ =
    run_tabled
      ~config:Reactor.default_config rw.Scenario.rw_session
      ~requester:rw.Scenario.rw_requester ~target:rw.Scenario.rw_target
      rw.Scenario.rw_goal
  in
  Alcotest.(check bool) "cycle denied without tabling" false (granted outcome)

let test_tabling_acyclic_chain () =
  (* An acyclic cross-peer chain under tabling produces the full answer
     set bottom-up, without any SCC probe round. *)
  let session = Session.create () in
  ignore
    (Session.add_peer session ~program:{|path(X) <- hop(X) @ "mid".|} "top");
  ignore (Session.add_peer session ~program:{|hop(X) <- base(X) @ "leaf".|} "mid");
  ignore (Session.add_peer session ~program:{|base(1). base(2).|} "leaf");
  ignore (Session.add_peer session "client");
  Engine.attach_all session;
  let outcome, reactor =
    run_tabled session ~requester:"client" ~target:"top" (lit "path(X)")
  in
  Alcotest.(check (list string))
    "acyclic chain answers" [ "path(1)"; "path(2)" ]
    (sorted_instances outcome);
  Alcotest.(check int) "no SCC probe was needed" 0
    (List.length
       (List.filter
          (fun (_, _, _, status) -> not (String.equal status "complete"))
          (Reactor.tabling_summary reactor)))

let test_tabling_naf_unsupported () =
  let session = Session.create () in
  ignore
    (Session.add_peer session
       ~program:{|ok(X) <- base(X), not bad(X). base(1). |}
       "owner");
  ignore (Session.add_peer session "client");
  Engine.attach_all session;
  let outcome, _ =
    run_tabled session ~requester:"client" ~target:"owner" (lit "ok(X)")
  in
  match outcome with
  | Negotiation.Denied reason ->
      Alcotest.(check string) "classified unsupported" "unsupported"
        (Negotiation.denial_class_to_string
           (Negotiation.classify_denial reason))
  | Negotiation.Granted _ ->
      Alcotest.fail "NAF under distributed tabling must deny as unsupported"

let test_tabling_cached_rerun () =
  (* With a cache attached, a second identical request is served from
     the completed table's cached answer without new wire traffic. *)
  let rw = Scenario.mutual_accreditation () in
  let session = rw.Scenario.rw_session in
  let config =
    { tabling_config with Reactor.cache = Some (Answer_cache.create ()) }
  in
  let reactor = Reactor.create ~config session in
  let id1 =
    Reactor.submit reactor ~requester:rw.Scenario.rw_requester
      ~target:rw.Scenario.rw_target rw.Scenario.rw_goal
  in
  ignore (Reactor.run reactor);
  let msgs_before =
    Net.Stats.messages (Net.Network.stats session.Session.network)
  in
  let id2 =
    Reactor.submit reactor ~requester:rw.Scenario.rw_requester
      ~target:rw.Scenario.rw_target rw.Scenario.rw_goal
  in
  ignore (Reactor.run reactor);
  let msgs_after =
    Net.Stats.messages (Net.Network.stats session.Session.network)
  in
  Alcotest.(check (list string))
    "both runs grant the same set"
    (sorted_instances (Reactor.outcome reactor id1))
    (sorted_instances (Reactor.outcome reactor id2));
  Alcotest.(check bool) "first run granted" true
    (granted (Reactor.outcome reactor id1));
  Alcotest.(check int) "cache replay posts nothing" msgs_before msgs_after

let test_cache_completed_gate () =
  (* Regression for the recursion-safety bit: a store flagged incomplete
     must never be inserted, so a later find cannot serve a premature
     (partial) answer set. *)
  let c = Answer_cache.create () in
  Answer_cache.store ~completed:false c ~now:0 ~asker:"a" ~owner:"o"
    (lit "p(X)") (dummy_answer "p(1)");
  Alcotest.(check bool) "premature answer never served" false
    (find_some c ~now:1 ~asker:"a" ~owner:"o" "p(X)");
  Alcotest.(check int) "nothing inserted" 0 (Answer_cache.length c);
  Answer_cache.store ~completed:true c ~now:0 ~asker:"a" ~owner:"o"
    (lit "p(X)") (dummy_answer "p(1)");
  Alcotest.(check bool) "completed answer served" true
    (find_some c ~now:1 ~asker:"a" ~owner:"o" "p(X)")

(* ------------------------------------------------------------------ *)
(* Crash-stop peers: scheduled crashes, incarnation-aware recovery,
   journals and deadlines *)

let journal_memory =
  { Reactor.default_config with Reactor.journal = Reactor.Journal_memory }

let crash_faults specs =
  let f = Net.Faults.none () in
  List.iter
    (fun (peer, at_tick, restart_tick) ->
      Net.Faults.add_crash f ~peer ~at_tick ~restart_tick)
    specs;
  f

let run_s1_crash ?(config = Reactor.default_config) specs =
  let s = Scenario.scenario1 () in
  let session = s.Scenario.s1_session in
  Net.Network.set_faults session.Session.network (crash_faults specs);
  let reactor = Reactor.create ~config session in
  let id =
    Reactor.submit reactor ~requester:"Alice" ~target:"E-Learn"
      (lit {|discountEnroll(spanish101, "Alice")|})
  in
  ignore (Reactor.run reactor);
  (Reactor.outcome reactor id, session)

let wallet_serials session name =
  let p = Session.peer session name in
  Hashtbl.fold
    (fun _ (c : Peertrust_crypto.Cert.t) acc ->
      c.Peertrust_crypto.Cert.serial :: acc)
    p.Peer.certs []
  |> List.sort compare

let counter snap name = Pobs.Registry.counter_value snap name

let check_crashed = function
  | Negotiation.Denied reason ->
      Alcotest.(check string)
        "denial classified as Crashed" "crashed"
        (Negotiation.denial_class_to_string
           (Negotiation.classify_denial reason))
  | Negotiation.Granted _ -> Alcotest.fail "granted against a dead peer"

let test_crash_forever_denied () =
  (* The responder crash-stops mid-negotiation and never returns: the
     requester's sub-queries must degrade into a structured crashed
     denial, not a hang and not a generic timeout. *)
  Pobs.Obs.reset_metrics ();
  let outcome, _ = run_s1_crash [ ("E-Learn", 5, max_int) ] in
  check_crashed outcome;
  let snap = Pobs.Obs.snapshot () in
  Alcotest.(check int) "one crash executed" 1 (counter snap "reactor.crashes");
  Alcotest.(check int) "no restart" 0 (counter snap "reactor.restarts")

let test_crash_restart_journal_recovers () =
  (* Crash + scheduled restart with the journal on: the negotiation
     must still grant, pre-crash deliveries must be discarded as stale
     rather than applied to the new incarnation, and the recovered
     wallet must equal the fault-free one — journal replay never
     double-learns a certificate. *)
  let baseline, clean_session = run_s1_crash [] in
  Alcotest.(check bool) "fault-free grants" true (granted baseline);
  let clean = wallet_serials clean_session "E-Learn" in
  Pobs.Obs.reset_metrics ();
  let outcome, session =
    run_s1_crash ~config:journal_memory [ ("E-Learn", 5, 40) ]
  in
  Alcotest.(check bool) "recovers and grants" true (granted outcome);
  let snap = Pobs.Obs.snapshot () in
  Alcotest.(check int) "one crash" 1 (counter snap "reactor.crashes");
  Alcotest.(check int) "one restart" 1 (counter snap "reactor.restarts");
  Alcotest.(check bool) "stale deliveries discarded" true
    (counter snap "reactor.stale_epoch" > 0);
  Alcotest.(check (list int))
    "recovered wallet equals fault-free wallet" clean
    (wallet_serials session "E-Learn")

let test_crash_requester_root_recovery () =
  (* The requester itself crashes.  Without a journal its accepted root
     goal is volatile state: the request must settle as a crashed
     denial even though a restart is scheduled.  With the journal the
     root is re-launched at restart and still grants. *)
  Pobs.Obs.reset_metrics ();
  let outcome, _ = run_s1_crash [ ("Alice", 2, 14) ] in
  check_crashed outcome;
  Pobs.Obs.reset_metrics ();
  let outcome, _ = run_s1_crash ~config:journal_memory [ ("Alice", 2, 14) ] in
  Alcotest.(check bool) "journalled root grants" true (granted outcome);
  let snap = Pobs.Obs.snapshot () in
  Alcotest.(check bool) "root goal recovered from the journal" true
    (counter snap "reactor.recovered_goals" >= 1)

let test_crash_suspend_reissue () =
  (* The responder stays down past the requester's whole retry budget
     (8+16+32+64 ticks).  Because its restart is scheduled, the
     exhausted sub-queries must suspend instead of denying, then be
     reissued (attempt 0, fresh timer) once the peer returns. *)
  Pobs.Obs.reset_metrics ();
  let outcome, _ =
    run_s1_crash ~config:journal_memory [ ("E-Learn", 2, 150) ]
  in
  Alcotest.(check bool) "grants after the long outage" true (granted outcome);
  let snap = Pobs.Obs.snapshot () in
  Alcotest.(check bool) "retries burnt against the dead peer" true
    (counter snap "reactor.retries" > 0);
  Alcotest.(check bool) "retry budget drained while down" true
    (counter snap "reactor.timeouts" > 0);
  Alcotest.(check bool) "suspended sub-queries reissued at restart" true
    (counter snap "reactor.reissued_subqueries" > 0)

let test_deadline_expiry_cancels () =
  (* A root with a deadline tighter than the negotiation's latency: the
     request must settle as exactly [deadline expired], and the
     requester must withdraw its outstanding sub-queries with Cancel
     messages so the responder drops the parked goal.  The far-future
     bystander crash keeps the fault plan active so retransmission
     timers (which the Cancels are collected from) are armed. *)
  Pobs.Obs.reset_metrics ();
  let session = counter_query_world () in
  Net.Network.set_faults session.Session.network
    (crash_faults [ ("req", 500, max_int) ]);
  let reactor = Reactor.create session in
  let id =
    Reactor.submit ~deadline:2 reactor ~requester:"req" ~target:"owner"
      (lit {|resource("r")|})
  in
  ignore (Reactor.run reactor);
  (match Reactor.outcome reactor id with
  | Negotiation.Denied reason ->
      Alcotest.(check string) "denial reason" "deadline expired" reason
  | Negotiation.Granted _ -> Alcotest.fail "granted past its deadline");
  let snap = Pobs.Obs.snapshot () in
  Alcotest.(check int) "one deadline expiry" 1
    (counter snap "reactor.deadline_expiries");
  Alcotest.(check bool) "outstanding sub-queries withdrawn" true
    (counter snap "reactor.cancels" > 0);
  Alcotest.(check bool) "responder dropped the parked goal" true
    (counter snap "reactor.cancelled_goals" > 0)

let with_temp_dir f =
  let dir = Filename.temp_file "ptjournal" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun file -> Sys.remove (Filename.concat dir file))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_journal_dir_cross_process_resume () =
  (* Disk journals survive the process, not just the crash: a second
     reactor created over a fresh world with the same journal directory
     replays the learned knowledge at create and allocates request ids
     past the journalled ones. *)
  with_temp_dir @@ fun dir ->
  let config =
    { Reactor.default_config with Reactor.journal = Reactor.Journal_dir dir }
  in
  let s = Scenario.scenario1 () in
  let session = s.Scenario.s1_session in
  let reactor = Reactor.create ~config session in
  let id =
    Reactor.submit reactor ~requester:"Alice" ~target:"E-Learn"
      (lit {|discountEnroll(spanish101, "Alice")|})
  in
  ignore (Reactor.run reactor);
  Alcotest.(check bool) "first process grants" true
    (granted (Reactor.outcome reactor id));
  let learned = wallet_serials session "E-Learn" in
  (* Second process: fresh world, same journal directory. *)
  let s2 = Scenario.scenario1 () in
  let session2 = s2.Scenario.s1_session in
  Pobs.Obs.reset_metrics ();
  let reactor2 = Reactor.create ~config session2 in
  Alcotest.(check (list int))
    "replayed wallet matches the first process" learned
    (wallet_serials session2 "E-Learn");
  let id2 =
    Reactor.submit reactor2 ~requester:"Alice" ~target:"E-Learn"
      (lit {|discountEnroll(spanish101, "Alice")|})
  in
  ignore (Reactor.run reactor2);
  Alcotest.(check bool) "resumed process still grants" true
    (granted (Reactor.outcome reactor2 id2));
  Alcotest.(check (list int))
    "re-learning after replay added nothing" learned
    (wallet_serials session2 "E-Learn")

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "reactor"
    [
      ( "basics",
        [
          tc "public fact" test_reactor_public_fact;
          tc "private fact denied" test_reactor_private_fact_denied;
          tc "counter-query" test_reactor_counter_query;
          tc "result before run" test_reactor_result_before_run;
        ] );
      ( "scenarios",
        [
          tc "scenario 1" test_reactor_scenario1;
          tc "scenario 2 free course" test_reactor_scenario2_free;
          tc "agrees with sync engine" test_reactor_matches_sync_on_chains;
          tc "chain discovery" test_reactor_chain_discovery;
        ] );
      ( "concurrency",
        [
          tc "interleaved negotiations" test_reactor_concurrent_negotiations;
          tc "marketplace over one queue" test_reactor_marketplace_concurrent;
          tc "missing credential denied" test_reactor_disclosure_message;
        ] );
      ( "failure",
        [
          tc "deadlock quiesces" test_reactor_deadlock_quiesces;
          tc "unreachable target" test_reactor_unreachable_target;
          tc "message budget" test_reactor_message_budget;
        ] );
      ( "degraded",
        [
          tc "peer down mid-negotiation" test_reactor_down_mid_negotiation;
          tc "duplicate answers idempotent"
            test_reactor_duplicate_answers_idempotent;
          tc "budget denies all parked" test_reactor_budget_denies_all_parked;
          tc "negotiate convenience" test_reactor_negotiate_convenience;
        ] );
      ( "cache",
        [
          tc "ttl expiry" test_cache_ttl_expiry;
          tc "variant keying" test_cache_variant_keying;
          tc "capacity eviction" test_cache_capacity_eviction;
          tc "explicit invalidation" test_cache_invalidation;
          tc "revocation watcher" test_cache_watch_accounts;
          tc "kb-update watcher" test_cache_watch_peer;
          tc "warm cross-session run" test_cache_warm_cross_session;
          tc "batched sub-queries" test_reactor_batching;
        ] );
      ( "tabling",
        [
          tc "mutual accreditation" test_tabling_mutual_accreditation;
          tc "four-peer ring" test_tabling_larger_ring;
          tc "federated clusters" test_tabling_federation;
          tc "cycle denied without tabling" test_tabling_off_cycle_denied;
          tc "acyclic chain" test_tabling_acyclic_chain;
          tc "NAF unsupported" test_tabling_naf_unsupported;
          tc "cached rerun" test_tabling_cached_rerun;
          tc "cache completed gate" test_cache_completed_gate;
        ] );
      ( "guard",
        [
          tc "breaker open/half-open/close" test_guard_breaker_transitions;
          tc "rate limit" test_guard_rate_limit;
          tc "work quota" test_guard_quota;
          tc "solicitation" test_guard_solicitation;
          tc "bad certs and bombs" test_guard_bad_cert_and_bomb;
          tc "denial classification" test_classify_guard_denials;
          tc "bounded dedup set" test_dedup_bounded;
        ] );
      ( "crash",
        [
          tc "crash forever denied" test_crash_forever_denied;
          tc "journal recovery" test_crash_restart_journal_recovers;
          tc "requester root recovery" test_crash_requester_root_recovery;
          tc "suspend and reissue" test_crash_suspend_reissue;
          tc "deadline expiry cancels" test_deadline_expiry_cancels;
          tc "cross-process journal resume"
            test_journal_dir_cross_process_resume;
        ] );
    ]

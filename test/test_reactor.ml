(* Tests for the queued (asynchronous) negotiation engine: equivalence
   with the synchronous engine on the paper scenarios, interleaved
   concurrent negotiations, quiescence on deadlock, and failure modes. *)

open Peertrust
open Peertrust_dlp
module Net = Peertrust_net
module Pobs = Peertrust_obs

let lit = Parser.parse_literal

let granted = function
  | Negotiation.Granted _ -> true
  | Negotiation.Denied _ -> false

let run_reactor session ~requester ~target goal =
  let reactor = Reactor.create session in
  let id = Reactor.submit reactor ~requester ~target goal in
  ignore (Reactor.run reactor);
  Reactor.outcome reactor id

(* ------------------------------------------------------------------ *)

let test_reactor_public_fact () =
  let session = Session.create () in
  ignore (Session.add_peer session ~program:{|info(42) $ true.|} "owner");
  ignore (Session.add_peer session "req");
  match run_reactor session ~requester:"req" ~target:"owner" (lit "info(X)") with
  | Negotiation.Granted [ (l, _) ] ->
      Alcotest.(check string) "instance" "info(42)" (Literal.to_string l)
  | _ -> Alcotest.fail "expected one instance"

let test_reactor_private_fact_denied () =
  let session = Session.create () in
  ignore (Session.add_peer session ~program:{|secret(1).|} "owner");
  ignore (Session.add_peer session "req");
  Alcotest.(check bool) "denied" false
    (granted (run_reactor session ~requester:"req" ~target:"owner" (lit "secret(X)")))

let test_reactor_counter_query () =
  let session = Session.create () in
  ignore
    (Session.add_peer session
       ~program:
         {|resource("r") $ cred(Requester) @ "CA" <-{true} haveIt("r").
           haveIt("r").
           cred(X) @ "CA" <- cred(X) @ "CA" @ X.|}
       "owner");
  ignore
    (Session.add_peer session
       ~program:{|cred("req") @ "CA" $ true signedBy ["CA"].|}
       "req");
  Alcotest.(check bool) "granted after queued counter-query" true
    (granted
       (run_reactor session ~requester:"req" ~target:"owner"
          (lit {|resource("r")|})))

let test_reactor_scenario1 () =
  let s = Scenario.scenario1 () in
  let outcome =
    run_reactor s.Scenario.s1_session ~requester:"Alice" ~target:"E-Learn"
      (lit {|discountEnroll(spanish101, "Alice")|})
  in
  Alcotest.(check bool) "scenario 1 granted via the queue" true (granted outcome)

let test_reactor_scenario2_free () =
  let s = Scenario.scenario2 () in
  let outcome =
    run_reactor s.Scenario.s2_session ~requester:"Bob" ~target:"E-Learn"
      (lit {|enroll(cs101, "Bob", "IBM", Email, 0)|})
  in
  Alcotest.(check bool) "scenario 2 free course granted" true (granted outcome)

let test_reactor_matches_sync_on_chains () =
  List.iter
    (fun depth ->
      List.iter
        (fun missing ->
          (* Synchronous run. *)
          let w1 = Scenario.policy_chain ~depth ?missing () in
          let sync =
            Negotiation.succeeded
              (Negotiation.request w1.Scenario.cw_session ~requester:"alice"
                 ~target:"bob" w1.Scenario.cw_goal)
          in
          (* Queued run on a fresh world. *)
          let w2 = Scenario.policy_chain ~depth ?missing () in
          let async =
            granted
              (run_reactor w2.Scenario.cw_session ~requester:"alice"
                 ~target:"bob" w2.Scenario.cw_goal)
          in
          Alcotest.(check bool)
            (Printf.sprintf "depth %d missing %s agree" depth
               (match missing with Some k -> string_of_int k | None -> "-"))
            sync async)
        [ None; Some 1; Some depth ])
    [ 1; 2; 4 ]

let test_reactor_concurrent_negotiations () =
  (* Several negotiations interleave over one queue; all resolve. *)
  let w = Scenario.fanout ~width:3 () in
  let session = w.Scenario.cw_session in
  let reactor = Reactor.create session in
  let r1 =
    Reactor.submit reactor ~requester:"alice" ~target:"bob" w.Scenario.cw_goal
  in
  (* A second, failing negotiation in the same world. *)
  let r2 =
    Reactor.submit reactor ~requester:"alice" ~target:"bob"
      (lit {|resource("does-not-exist")|})
  in
  (* And a sub-resource request directly for one credential of alice. *)
  let r3 =
    Reactor.submit reactor ~requester:"bob" ~target:"alice"
      (lit {|need1("alice") @ "CA"|})
  in
  ignore (Reactor.run reactor);
  Alcotest.(check bool) "main negotiation granted" true
    (granted (Reactor.outcome reactor r1));
  Alcotest.(check bool) "bogus resource denied" false
    (granted (Reactor.outcome reactor r2));
  Alcotest.(check bool) "credential request granted" true
    (granted (Reactor.outcome reactor r3));
  Alcotest.(check int) "nothing left parked" 0 (Reactor.parked_count reactor)

let test_reactor_marketplace_concurrent () =
  (* All marketplace goals submitted at once over one queue. *)
  let mp =
    Scenario.marketplace ~providers:2 ~learners:3 ~courses_per_provider:2 ()
  in
  let reactor = Reactor.create mp.Scenario.mp_session in
  let requests =
    List.map
      (fun (learner, provider, goal) ->
        Reactor.submit reactor ~requester:learner ~target:provider goal)
      mp.Scenario.mp_goals
  in
  ignore (Reactor.run reactor);
  List.iter
    (fun id ->
      Alcotest.(check bool) "granted" true
        (granted (Reactor.outcome reactor id)))
    requests;
  Alcotest.(check int) "no parked leftovers" 0 (Reactor.parked_count reactor)

let test_reactor_disclosure_message () =
  (* A pushed disclosure wakes parked goals. *)
  let session = Session.create () in
  ignore
    (Session.add_peer session
       ~program:
         {|resource("r") $ cred(Requester) @ "CA" <-{true} haveIt("r").
           haveIt("r").|}
       "owner");
  ignore (Session.add_peer session "alice");
  let reactor = Reactor.create session in
  let id =
    Reactor.submit reactor ~requester:"alice" ~target:"owner"
      (lit {|resource("r")|})
  in
  ignore (Reactor.run reactor);
  (* Denied: alice has no credential and no redirect path exists. *)
  Alcotest.(check bool) "denied without credential" false
    (granted (Reactor.outcome reactor id))

let test_reactor_deadlock_quiesces () =
  let session = Session.create () in
  ignore
    (Session.add_peer session
       ~program:
         {|a("o") $ b(Requester) @ "CA" <-{true} a("o").
           a("o") @ "CA" signedBy ["CA"].
           b(X) @ "CA" <- b(X) @ "CA" @ X.|}
       "owner");
  ignore
    (Session.add_peer session
       ~program:
         {|b("req") $ a(Requester) @ "CA" <-{true} b("req").
           b("req") @ "CA" signedBy ["CA"].
           a(X) @ "CA" <- a(X) @ "CA" @ X.|}
       "req");
  let reactor = Reactor.create session in
  let id = Reactor.submit reactor ~requester:"req" ~target:"owner" (lit {|a("o")|}) in
  let steps = Reactor.run reactor in
  Alcotest.(check bool) "terminates" true (steps < 1000);
  Alcotest.(check bool) "denied" false (granted (Reactor.outcome reactor id));
  Alcotest.(check int) "no goals left parked" 0 (Reactor.parked_count reactor)

let test_reactor_unreachable_target () =
  let session = Session.create () in
  ignore (Session.add_peer session ~program:{|info(1) $ true.|} "owner");
  ignore (Session.add_peer session "req");
  Net.Network.set_down session.Session.network "owner" true;
  match run_reactor session ~requester:"req" ~target:"owner" (lit "info(X)") with
  | Negotiation.Denied reason ->
      Alcotest.(check string) "structured reason" "unreachable: owner" reason;
      Alcotest.(check bool) "classified as transport denial" true
        (Negotiation.transport_denial reason)
  | Negotiation.Granted _ -> Alcotest.fail "down peer cannot grant"

let counter_query_world ?max_messages () =
  let session = Session.create ?max_messages () in
  ignore
    (Session.add_peer session
       ~program:
         {|resource("r") $ cred(Requester) @ "CA" <-{true} haveIt("r").
           haveIt("r").
           cred(X) @ "CA" <- cred(X) @ "CA" @ X.|}
       "owner");
  ignore
    (Session.add_peer session
       ~program:{|cred("req") @ "CA" $ true signedBy ["CA"].|}
       "req");
  session

let test_reactor_down_mid_negotiation () =
  (* The owner goes down after sending its counter-query: the requester's
     answer can no longer be delivered.  The reactor must count and trace
     the dropped reply (not lose it silently), and the negotiation must
     still terminate in a denial rather than hang. *)
  Pobs.Obs.reset_metrics ();
  let session = counter_query_world () in
  let reactor = Reactor.create session in
  let id =
    Reactor.submit reactor ~requester:"req" ~target:"owner"
      (lit {|resource("r")|})
  in
  (* Deliver the top-level query; the owner parks it and counter-queries. *)
  Alcotest.(check bool) "first event processed" true (Reactor.step reactor);
  Net.Network.set_down session.Session.network "owner" true;
  let steps = Reactor.run reactor in
  Alcotest.(check bool) "terminates" true (steps < 1000);
  Alcotest.(check bool) "denied" false (granted (Reactor.outcome reactor id));
  Alcotest.(check int) "nothing left parked" 0 (Reactor.parked_count reactor);
  let snapshot = Pobs.Obs.snapshot () in
  Alcotest.(check bool) "dropped reply counted" true
    (Pobs.Registry.counter_value snapshot "reactor.drops" > 0)

let test_reactor_duplicate_answers_idempotent () =
  (* Every delivery duplicated: the duplicate Answer dispatch must be
     deduplicated and the outcome must match the fault-free run. *)
  Pobs.Obs.reset_metrics ();
  let session = counter_query_world () in
  Net.Network.set_faults session.Session.network
    (Net.Faults.create ~duplicate:1.0 ~seed:11L ());
  Alcotest.(check bool) "granted despite duplication" true
    (granted
       (run_reactor session ~requester:"req" ~target:"owner"
          (lit {|resource("r")|})));
  let snapshot = Pobs.Obs.snapshot () in
  Alcotest.(check bool) "duplicates deduplicated on dispatch" true
    (Pobs.Registry.counter_value snapshot "reactor.dup_deliveries" > 0)

let test_reactor_budget_denies_all_parked () =
  (* Two top-level goals are parked when the budget trips; both must be
     settled with the structured budget denial, not left unresolved. *)
  let session = counter_query_world ~max_messages:3 () in
  let reactor = Reactor.create session in
  let r1 =
    Reactor.submit reactor ~requester:"req" ~target:"owner"
      (lit {|resource("r")|})
  in
  let r2 =
    Reactor.submit reactor ~requester:"req" ~target:"owner"
      (lit {|resource("r")|})
  in
  ignore (Reactor.run reactor);
  List.iter
    (fun id ->
      match Reactor.outcome reactor id with
      | Negotiation.Denied reason ->
          Alcotest.(check string) "budget reason" "message budget exhausted"
            reason;
          Alcotest.(check bool) "classified as budget" true
            (Negotiation.transport_denial reason)
      | Negotiation.Granted _ -> Alcotest.fail "should hit the budget")
    [ r1; r2 ]

let test_reactor_negotiate_convenience () =
  let session = counter_query_world () in
  let report =
    Reactor.negotiate session ~requester:"req" ~target:"owner"
      (lit {|resource("r")|})
  in
  Alcotest.(check bool) "granted" true
    (granted report.Negotiation.outcome);
  Alcotest.(check bool) "messages measured" true
    (report.Negotiation.messages > 0)

let test_reactor_message_budget () =
  let session = Session.create ~max_messages:2 () in
  ignore
    (Session.add_peer session
       ~program:
         {|resource("r") $ cred(Requester) @ "CA" <-{true} haveIt("r").
           haveIt("r").
           cred(X) @ "CA" <- cred(X) @ "CA" @ X.|}
       "owner");
  ignore
    (Session.add_peer session
       ~program:{|cred("req") @ "CA" $ true signedBy ["CA"].|}
       "req");
  let reactor = Reactor.create session in
  let id =
    Reactor.submit reactor ~requester:"req" ~target:"owner" (lit {|resource("r")|})
  in
  ignore (Reactor.run reactor);
  match Reactor.outcome reactor id with
  | Negotiation.Denied "message budget exhausted" -> ()
  | Negotiation.Denied r -> Alcotest.failf "unexpected denial: %s" r
  | Negotiation.Granted _ -> Alcotest.fail "should hit the budget"

let test_reactor_result_before_run () =
  let session = Session.create () in
  ignore (Session.add_peer session ~program:{|info(1) $ true.|} "owner");
  ignore (Session.add_peer session "req");
  let reactor = Reactor.create session in
  let id = Reactor.submit reactor ~requester:"req" ~target:"owner" (lit "info(X)") in
  Alcotest.(check bool) "unresolved before run" true
    (Reactor.result reactor id = None);
  ignore (Reactor.run reactor);
  Alcotest.(check bool) "resolved after run" true
    (Reactor.result reactor id <> None)

let test_reactor_chain_discovery () =
  (* Deep chains work through the queue as well. *)
  let session, root, _ =
    Chain.linear_world ~depth:6 ~pred:"member" ~subject:"sam" ()
  in
  ignore (Session.add_peer session "client");
  let outcome =
    run_reactor session ~requester:"client" ~target:root
      (lit {|member("sam")|})
  in
  Alcotest.(check bool) "chain resolves through the queue" true (granted outcome);
  let client = Session.peer session "client" in
  Alcotest.(check bool) "certificates relayed" true
    (Hashtbl.length client.Peer.certs >= 7)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "reactor"
    [
      ( "basics",
        [
          tc "public fact" test_reactor_public_fact;
          tc "private fact denied" test_reactor_private_fact_denied;
          tc "counter-query" test_reactor_counter_query;
          tc "result before run" test_reactor_result_before_run;
        ] );
      ( "scenarios",
        [
          tc "scenario 1" test_reactor_scenario1;
          tc "scenario 2 free course" test_reactor_scenario2_free;
          tc "agrees with sync engine" test_reactor_matches_sync_on_chains;
          tc "chain discovery" test_reactor_chain_discovery;
        ] );
      ( "concurrency",
        [
          tc "interleaved negotiations" test_reactor_concurrent_negotiations;
          tc "marketplace over one queue" test_reactor_marketplace_concurrent;
          tc "missing credential denied" test_reactor_disclosure_message;
        ] );
      ( "failure",
        [
          tc "deadlock quiesces" test_reactor_deadlock_quiesces;
          tc "unreachable target" test_reactor_unreachable_target;
          tc "message budget" test_reactor_message_budget;
        ] );
      ( "degraded",
        [
          tc "peer down mid-negotiation" test_reactor_down_mid_negotiation;
          tc "duplicate answers idempotent"
            test_reactor_duplicate_answers_idempotent;
          tc "budget denies all parked" test_reactor_budget_denies_all_parked;
          tc "negotiate convenience" test_reactor_negotiate_convenience;
        ] );
    ]

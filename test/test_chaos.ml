(* Chaos tests: the paper's §4.1/§4.2 scenarios replayed under seeded
   fault schedules (drops, duplicates, delays, reordering, transient
   outages).  The property under test: every run terminates within the
   step budget and ends in either the fault-free outcome or a clean
   structured denial — never a hang, an uncaught exception, or a silent
   drop — and with all fault rates at zero the transcript is identical to
   the fault-free run. *)

open Peertrust
module Net = Peertrust_net
module Pobs = Peertrust_obs

let key_bits = 288 (* small keys keep the 100-seed sweeps fast *)
let max_steps = 20_000

let granted = function
  | Negotiation.Granted _ -> true
  | Negotiation.Denied _ -> false

(* One queued scenario-1 run; [faults] installs a plan before the
   reactor starts, [config] selects reactor options (answer cache,
   batching). *)
let run_s1 ?faults ?config () =
  let s = Scenario.scenario1 ~key_bits () in
  let net = s.Scenario.s1_session.Session.network in
  Option.iter (Net.Network.set_faults net) faults;
  let reactor = Reactor.create ?config s.Scenario.s1_session in
  let id =
    Reactor.submit reactor ~requester:"Alice" ~target:"E-Learn"
      (Scenario.scenario1_goal ())
  in
  let steps = Reactor.run ~max_steps reactor in
  (Reactor.outcome reactor id, steps, reactor, net)

(* One queued scenario-2 run with the free and paid goals interleaved
   over a single reactor queue. *)
let run_s2 ?faults ?config () =
  let s = Scenario.scenario2 ~key_bits () in
  let net = s.Scenario.s2_session.Session.network in
  Option.iter (Net.Network.set_faults net) faults;
  let reactor = Reactor.create ?config s.Scenario.s2_session in
  let free =
    Reactor.submit reactor ~requester:"Bob" ~target:"E-Learn"
      (Scenario.scenario2_goal_free ())
  in
  let paid =
    Reactor.submit reactor ~requester:"Bob" ~target:"E-Learn"
      (Scenario.scenario2_goal_paid ())
  in
  let steps = Reactor.run ~max_steps reactor in
  ((Reactor.outcome reactor free, Reactor.outcome reactor paid), steps, reactor, net)

let chaos_plan ?(drop = 0.12) ?(outage = None) seed =
  let f =
    Net.Faults.create ~drop ~duplicate:0.1 ~delay:0.25 ~delay_max:4
      ~reorder:0.1 ~seed ()
  in
  (match outage with
  | Some (peer, from_tick, until_tick) ->
      Net.Faults.add_outage f ~peer ~from_tick ~until_tick
  | None -> ());
  f

(* A faulted outcome is acceptable when it matches the fault-free outcome
   or degrades into a denial (all denial reasons classify cleanly). *)
let acceptable ~label ~baseline outcome =
  match (baseline, outcome) with
  | _, Negotiation.Denied reason ->
      ignore (Negotiation.classify_denial reason : Negotiation.denial_class)
  | Negotiation.Granted _, Negotiation.Granted _ -> ()
  | Negotiation.Denied _, Negotiation.Granted _ ->
      Alcotest.failf "%s: granted under faults but denied fault-free" label

let transcript_sig net =
  List.map
    (fun e ->
      Printf.sprintf "[%d] %s->%s %s %d" e.Net.Network.time e.Net.Network.from
        e.Net.Network.target e.Net.Network.summary e.Net.Network.bytes_)
    (Net.Network.transcript net)

(* ------------------------------------------------------------------ *)

let test_chaos_sweep_scenario1 () =
  let baseline, _, _, _ = run_s1 () in
  Alcotest.(check bool) "fault-free baseline granted" true (granted baseline);
  Pobs.Obs.reset_metrics ();
  for seed = 1 to 100 do
    let faults =
      chaos_plan
        ~outage:(if seed mod 3 = 0 then Some ("UIUC", 3, 9) else None)
        (Int64.of_int seed)
    in
    let outcome, steps, reactor, _ =
      try run_s1 ~faults () with
      | exn ->
          Alcotest.failf "seed %d: uncaught exception %s" seed
            (Printexc.to_string exn)
    in
    if steps >= max_steps then Alcotest.failf "seed %d: hit step budget" seed;
    acceptable ~label:(Printf.sprintf "seed %d" seed) ~baseline outcome;
    Alcotest.(check int)
      (Printf.sprintf "seed %d: nothing parked" seed)
      0 (Reactor.parked_count reactor);
    Alcotest.(check int)
      (Printf.sprintf "seed %d: no timers left" seed)
      0 (Reactor.pending_timers reactor)
  done;
  (* The sweep must have exercised the fault machinery and exported it. *)
  let snapshot = Pobs.Obs.snapshot () in
  let count name = Pobs.Registry.counter_value snapshot name in
  Alcotest.(check bool) "drops recorded" true (count "net.drops" > 0);
  Alcotest.(check bool) "duplicates recorded" true (count "net.duplicates" > 0);
  Alcotest.(check bool) "retries recorded" true (count "reactor.retries" > 0)

let test_chaos_sweep_scenario2 () =
  let (base_free, base_paid), _, _, _ = run_s2 () in
  Alcotest.(check bool) "free baseline granted" true (granted base_free);
  Alcotest.(check bool) "paid baseline granted" true (granted base_paid);
  for seed = 101 to 200 do
    let faults =
      chaos_plan
        ~outage:(if seed mod 4 = 0 then Some ("VISA", 2, 10) else None)
        (Int64.of_int seed)
    in
    let (free, paid), steps, reactor, _ =
      try run_s2 ~faults () with
      | exn ->
          Alcotest.failf "seed %d: uncaught exception %s" seed
            (Printexc.to_string exn)
    in
    if steps >= max_steps then Alcotest.failf "seed %d: hit step budget" seed;
    acceptable ~label:(Printf.sprintf "seed %d free" seed) ~baseline:base_free
      free;
    acceptable ~label:(Printf.sprintf "seed %d paid" seed) ~baseline:base_paid
      paid;
    Alcotest.(check int)
      (Printf.sprintf "seed %d: nothing parked" seed)
      0 (Reactor.parked_count reactor);
    Alcotest.(check int)
      (Printf.sprintf "seed %d: no timers left" seed)
      0 (Reactor.pending_timers reactor)
  done

let test_zero_faults_byte_identical () =
  (* A seeded plan with all-zero rates and no outages must not change a
     single transcript byte relative to an untouched network. *)
  let plain_outcome, plain_steps, _, plain_net = run_s1 () in
  let zeroed = Net.Faults.create ~seed:42L () in
  Alcotest.(check bool) "zero-rate plan is fault-free" true
    (Net.Faults.is_none zeroed);
  let zero_outcome, zero_steps, _, zero_net = run_s1 ~faults:zeroed () in
  let none_outcome, none_steps, _, none_net =
    run_s1 ~faults:(Net.Faults.none ()) ()
  in
  Alcotest.(check (list string))
    "transcript identical (zero rates)" (transcript_sig plain_net)
    (transcript_sig zero_net);
  Alcotest.(check (list string))
    "transcript identical (none plan)" (transcript_sig plain_net)
    (transcript_sig none_net);
  Alcotest.(check int) "same steps (zero rates)" plain_steps zero_steps;
  Alcotest.(check int) "same steps (none plan)" plain_steps none_steps;
  Alcotest.(check bool) "same outcome" (granted plain_outcome)
    (granted zero_outcome && granted none_outcome)

let test_same_seed_same_schedule () =
  let a_outcome, a_steps, _, a_net = run_s1 ~faults:(chaos_plan 7L) () in
  let b_outcome, b_steps, _, b_net = run_s1 ~faults:(chaos_plan 7L) () in
  Alcotest.(check (list string))
    "identical transcripts" (transcript_sig a_net) (transcript_sig b_net);
  Alcotest.(check int) "identical steps" a_steps b_steps;
  Alcotest.(check bool) "identical outcome" (granted a_outcome)
    (granted b_outcome)

let test_outage_recovers_with_retries () =
  (* The target is unreachable for the opening window; retransmission with
     backoff rides it out and the negotiation still grants. *)
  Pobs.Obs.reset_metrics ();
  let faults = Net.Faults.none () in
  Net.Faults.add_outage faults ~peer:"E-Learn" ~from_tick:0 ~until_tick:12;
  let outcome, _, _, _ = run_s1 ~faults () in
  Alcotest.(check bool) "granted after the outage" true (granted outcome);
  let snapshot = Pobs.Obs.snapshot () in
  Alcotest.(check bool) "retries happened" true
    (Pobs.Registry.counter_value snapshot "reactor.retries" > 0);
  Alcotest.(check bool) "drops counted" true
    (Pobs.Registry.counter_value snapshot "net.drops" > 0)

let test_black_hole_times_out () =
  (* Every copy of the top-level query is lost: the retry budget drains
     and the outcome is a structured timeout denial. *)
  let faults = Net.Faults.create ~seed:1L () in
  Net.Faults.set_link faults ~from:"Alice" ~target:"E-Learn"
    { Net.Faults.zero_rates with Net.Faults.drop = 1.0 };
  Pobs.Obs.reset_metrics ();
  let outcome, _, _, _ = run_s1 ~faults () in
  (match outcome with
  | Negotiation.Denied reason ->
      Alcotest.(check string)
        "classified as timeout" "timeout"
        (Negotiation.denial_class_to_string
           (Negotiation.classify_denial reason));
      Alcotest.(check bool) "transport denial" true
        (Negotiation.transport_denial reason)
  | Negotiation.Granted _ -> Alcotest.fail "black hole cannot grant");
  let snapshot = Pobs.Obs.snapshot () in
  Alcotest.(check bool) "timeout counted" true
    (Pobs.Registry.counter_value snapshot "reactor.timeouts" > 0)

let test_duplicates_are_idempotent () =
  (* Every message delivered twice: outcome and grant-set match the
     fault-free run, and the duplicate deliveries are counted. *)
  Pobs.Obs.reset_metrics ();
  let faults =
    Net.Faults.create ~duplicate:1.0 ~seed:5L ()
  in
  let outcome, _, _, _ = run_s1 ~faults () in
  Alcotest.(check bool) "still granted" true (granted outcome);
  let snapshot = Pobs.Obs.snapshot () in
  Alcotest.(check bool) "duplicates counted" true
    (Pobs.Registry.counter_value snapshot "net.duplicates" > 0);
  Alcotest.(check bool) "duplicate deliveries deduplicated" true
    (Pobs.Registry.counter_value snapshot "reactor.dup_deliveries" > 0)

(* ------------------------------------------------------------------ *)
(* Answer cache under chaos: across 100 fault seeds (50 per scenario),
   a run with a cold cache must be byte-identical to a cache-off run of
   the same fault plan — consulting an empty cache and filling it changes
   no behaviour — and a warm re-run (fresh session, same cache, same
   fault plan) must post no more envelopes than the cold run.  The
   top-level goals are invalidated between the cold and warm runs so the
   warm run exercises sub-query hits, not just whole-answer replay. *)

let posts net = Net.Stats.messages (Net.Network.stats net)

let cache_sweep ~label ~seeds
    ~(run :
       ?config:Reactor.config ->
       Net.Faults.t ->
       bool * int * Reactor.t * Net.Network.t) ~invalidate_top =
  let warm_hits = ref 0 in
  List.iter
    (fun seed ->
      let plan () = chaos_plan (Int64.of_int seed) in
      let off_out, off_steps, _, off_net = run ?config:None (plan ()) in
      let cache = Answer_cache.create () in
      let config =
        { Reactor.default_config with Reactor.cache = Some cache }
      in
      let cold_out, cold_steps, _, cold_net = run ~config (plan ()) in
      Alcotest.(check (list string))
        (Printf.sprintf "%s seed %d: cold cache run is byte-identical" label
           seed)
        (transcript_sig off_net) (transcript_sig cold_net);
      Alcotest.(check int)
        (Printf.sprintf "%s seed %d: same steps" label seed)
        off_steps cold_steps;
      Alcotest.(check bool)
        (Printf.sprintf "%s seed %d: same outcome" label seed)
        off_out cold_out;
      invalidate_top cache;
      let hits_before = Answer_cache.hits cache in
      let warm_out, warm_steps, _, warm_net = run ~config (plan ()) in
      if warm_steps >= max_steps then
        Alcotest.failf "%s seed %d: warm run hit step budget" label seed;
      if cold_out && not warm_out then
        Alcotest.failf "%s seed %d: warm run lost the grant" label seed;
      if cold_out && posts warm_net > posts cold_net then
        Alcotest.failf "%s seed %d: warm run posted more envelopes (%d > %d)"
          label seed (posts warm_net) (posts cold_net);
      if Answer_cache.hits cache > hits_before then incr warm_hits)
    seeds;
  Alcotest.(check bool)
    (Printf.sprintf "%s: warm runs used the cache" label)
    true (!warm_hits > 0)

let test_cache_equivalence_scenario1 () =
  cache_sweep ~label:"s1"
    ~seeds:(List.init 50 (fun i -> 201 + i))
    ~run:(fun ?config faults ->
      let outcome, steps, reactor, net = run_s1 ~faults ?config () in
      (granted outcome, steps, reactor, net))
    ~invalidate_top:(fun cache ->
      ignore
        (Answer_cache.invalidate_goal cache ~owner:"E-Learn"
           (Scenario.scenario1_goal ())))

let test_cache_equivalence_scenario2 () =
  cache_sweep ~label:"s2"
    ~seeds:(List.init 50 (fun i -> 251 + i))
    ~run:(fun ?config faults ->
      let (free, paid), steps, reactor, net = run_s2 ~faults ?config () in
      (granted free && granted paid, steps, reactor, net))
    ~invalidate_top:(fun cache ->
      ignore
        (Answer_cache.invalidate_goal cache ~owner:"E-Learn"
           (Scenario.scenario2_goal_free ()));
      ignore
        (Answer_cache.invalidate_goal cache ~owner:"E-Learn"
           (Scenario.scenario2_goal_paid ())))

(* ------------------------------------------------------------------ *)
(* Distributed tabling under chaos.  Across 100 fault seeds, a cyclic
   mutual-accreditation web must terminate with the complete answer set
   and the same frozen tables as the fault-free run — a stronger pin
   than the scenario sweeps' "acceptable denial": Tanswer pushes carry
   the full monotone instance list and the completion protocol heals
   lost messages at quiescence, so drops, duplicates, delays and
   reordering may cost envelopes but never answers.  The fault-free
   cyclic transcript is additionally pinned byte-identical across
   repeats. *)

let tabling_chaos_config =
  {
    Reactor.default_config with
    Reactor.tabling = true;
    retry_limit = 6 (* deeper retry budget rides out clustered drops *);
  }

let run_accreditation ?faults ?(n = 3) () =
  let rw = Scenario.mutual_accreditation ~n () in
  let net = rw.Scenario.rw_session.Session.network in
  Option.iter (Net.Network.set_faults net) faults;
  let reactor =
    Reactor.create ~config:tabling_chaos_config rw.Scenario.rw_session
  in
  let id =
    Reactor.submit reactor ~requester:rw.Scenario.rw_requester
      ~target:rw.Scenario.rw_target rw.Scenario.rw_goal
  in
  let steps = Reactor.run ~max_steps reactor in
  (Reactor.outcome reactor id, steps, reactor, net)

let granted_set = function
  | Negotiation.Granted instances ->
      List.map (fun (l, _) -> Peertrust_dlp.Literal.to_string l) instances
      |> List.sort_uniq String.compare
  | Negotiation.Denied reason -> [ "denied: " ^ reason ]

let table_sig reactor =
  List.map
    (fun (peer, key, answers, status) ->
      Printf.sprintf "%s %s %d %s" peer key answers status)
    (Reactor.tabling_summary reactor)

let test_tabling_chaos_sweep () =
  let base_out, _, base_reactor, _ = run_accreditation () in
  Alcotest.(check bool) "fault-free cyclic baseline granted" true
    (granted base_out);
  let base_set = granted_set base_out in
  let base_tables = table_sig base_reactor in
  Pobs.Obs.reset_metrics ();
  for seed = 301 to 400 do
    let faults = chaos_plan (Int64.of_int seed) in
    let outcome, steps, reactor, _ =
      try run_accreditation ~faults () with
      | exn ->
          Alcotest.failf "seed %d: uncaught exception %s" seed
            (Printexc.to_string exn)
    in
    if steps >= max_steps then Alcotest.failf "seed %d: hit step budget" seed;
    Alcotest.(check (list string))
      (Printf.sprintf "seed %d: complete answer set under faults" seed)
      base_set (granted_set outcome);
    Alcotest.(check (list string))
      (Printf.sprintf "seed %d: same frozen tables as fault-free" seed)
      base_tables (table_sig reactor)
  done;
  let snapshot = Pobs.Obs.snapshot () in
  let count name = Pobs.Registry.counter_value snapshot name in
  Alcotest.(check bool) "drops recorded" true (count "net.drops" > 0);
  Alcotest.(check bool) "loops detected" true
    (count "tabling.loops_detected" > 0);
  Alcotest.(check bool) "completions recorded" true
    (count "tabling.completions" > 0)

let test_tabling_fault_free_pinned () =
  let a_out, a_steps, _, a_net = run_accreditation () in
  let b_out, b_steps, _, b_net = run_accreditation () in
  Alcotest.(check (list string))
    "cyclic fault-free transcript byte-identical across repeats"
    (transcript_sig a_net) (transcript_sig b_net);
  Alcotest.(check int) "same steps" a_steps b_steps;
  Alcotest.(check (list string)) "same answers" (granted_set a_out)
    (granted_set b_out)

(* ------------------------------------------------------------------ *)
(* Crash-stop recovery under chaos.  Across 100 seeds, scenario 1 runs
   with a randomized crash schedule (victim, crash tick, restart tick —
   some schedules never restart) layered over a randomized drop/delay
   plan, with per-peer write-ahead journals on.  Every run must
   terminate in the fault-free outcome or a cleanly classified denial,
   and a recovered victim's certificate wallet must hold no duplicate
   entries — journal replay learns through the idempotent wallet, never
   the verifier.  A schedule with no crashes and journals on must stay
   byte-identical to the plain fault-free run, and a cyclic tabled web
   must recover its complete frozen tables across member restarts. *)

let crash_config =
  { Reactor.default_config with Reactor.journal = Reactor.Journal_memory }

let wallet_serials session name =
  let peer = Session.peer session name in
  Hashtbl.fold
    (fun _ (c : Peertrust_crypto.Cert.t) acc ->
      c.Peertrust_crypto.Cert.serial :: acc)
    peer.Peer.certs []
  |> List.sort compare

let test_crash_chaos_sweep () =
  let baseline, _, _, _ = run_s1 () in
  Alcotest.(check bool) "fault-free baseline granted" true (granted baseline);
  Pobs.Obs.reset_metrics ();
  let recovered = ref 0 in
  for seed = 401 to 500 do
    (* randomized-but-deterministic schedule derived from the seed *)
    let victim = if seed mod 2 = 0 then "Alice" else "E-Learn" in
    let at_tick = 2 + (seed mod 11) in
    let restarts = seed mod 4 <> 3 in
    let restart_tick =
      if restarts then at_tick + 8 + (seed mod 17) else max_int
    in
    let faults = chaos_plan ~drop:0.08 (Int64.of_int seed) in
    Net.Faults.add_crash faults ~peer:victim ~at_tick ~restart_tick;
    let s = Scenario.scenario1 ~key_bits () in
    let session = s.Scenario.s1_session in
    Net.Network.set_faults session.Session.network faults;
    let reactor = Reactor.create ~config:crash_config session in
    let id =
      Reactor.submit reactor ~requester:"Alice" ~target:"E-Learn"
        (Scenario.scenario1_goal ())
    in
    let steps =
      try Reactor.run ~max_steps reactor with
      | exn ->
          Alcotest.failf "seed %d: uncaught exception %s" seed
            (Printexc.to_string exn)
    in
    if steps >= max_steps then Alcotest.failf "seed %d: hit step budget" seed;
    let outcome = Reactor.outcome reactor id in
    acceptable ~label:(Printf.sprintf "seed %d" seed) ~baseline outcome;
    if restarts && granted outcome then incr recovered;
    (* zero duplicate certificate learning after replay: the wallet the
       victim recovered must not hold the same certificate twice *)
    let serials = wallet_serials session victim in
    Alcotest.(check (list int))
      (Printf.sprintf "seed %d: no duplicate certs after replay" seed)
      (List.sort_uniq compare serials)
      serials
  done;
  Alcotest.(check bool) "some crashed runs recovered and granted" true
    (!recovered > 0);
  let snapshot = Pobs.Obs.snapshot () in
  let count name = Pobs.Registry.counter_value snapshot name in
  Alcotest.(check bool) "crashes recorded" true (count "reactor.crashes" > 0);
  Alcotest.(check bool) "restarts recorded" true
    (count "reactor.restarts" > 0);
  Alcotest.(check bool) "journal appends recorded" true
    (count "reactor.checkpoints" > 0);
  Alcotest.(check bool) "stale incarnations discarded" true
    (count "reactor.stale_epoch" > 0)

let test_crash_free_schedule_byte_identical () =
  (* Journals on but no crash scheduled: the write-ahead appends are
     invisible to the wire — transcript, steps and outcome must be
     byte-identical to the plain fault-free run. *)
  let plain_outcome, plain_steps, _, plain_net = run_s1 () in
  let j_outcome, j_steps, _, j_net = run_s1 ~config:crash_config () in
  Alcotest.(check (list string))
    "transcript identical with journals on" (transcript_sig plain_net)
    (transcript_sig j_net);
  Alcotest.(check int) "same steps" plain_steps j_steps;
  Alcotest.(check bool) "same outcome" (granted plain_outcome)
    (granted j_outcome)

let test_crash_tabling_recovers_tables () =
  (* A member of a cyclic accreditation web crash-stops mid-completion
     and restarts: the quiescence re-heal re-queries its lost tables
     (and, when the requester itself is the victim, the journal's Goal
     entry re-launches the root), so the final answers and frozen-table
     signature still match the fault-free run for every schedule. *)
  let config =
    { tabling_chaos_config with Reactor.journal = Reactor.Journal_memory }
  in
  let base_out, _, base_reactor, _ = run_accreditation () in
  Alcotest.(check bool) "fault-free cyclic baseline granted" true
    (granted base_out);
  let base_set = granted_set base_out in
  let base_tables = table_sig base_reactor in
  Pobs.Obs.reset_metrics ();
  for seed = 501 to 530 do
    let rw = Scenario.mutual_accreditation ~n:3 () in
    let session = rw.Scenario.rw_session in
    let members =
      List.sort compare
        (Hashtbl.fold (fun n _ acc -> n :: acc) session.Session.peers [])
    in
    let victim = List.nth members (seed mod List.length members) in
    let faults = Net.Faults.none () in
    Net.Faults.add_crash faults ~peer:victim
      ~at_tick:(2 + (seed mod 13))
      ~restart_tick:(2 + (seed mod 13) + 6 + (seed mod 9));
    Net.Network.set_faults session.Session.network faults;
    let reactor = Reactor.create ~config session in
    let id =
      Reactor.submit reactor ~requester:rw.Scenario.rw_requester
        ~target:rw.Scenario.rw_target rw.Scenario.rw_goal
    in
    let steps =
      try Reactor.run ~max_steps reactor with
      | exn ->
          Alcotest.failf "seed %d (victim %s): uncaught exception %s" seed
            victim (Printexc.to_string exn)
    in
    if steps >= max_steps then
      Alcotest.failf "seed %d (victim %s): hit step budget" seed victim;
    Alcotest.(check (list string))
      (Printf.sprintf "seed %d (victim %s): complete answers after restart"
         seed victim)
      base_set
      (granted_set (Reactor.outcome reactor id));
    Alcotest.(check (list string))
      (Printf.sprintf "seed %d (victim %s): same frozen tables" seed victim)
      base_tables (table_sig reactor)
  done;
  let snapshot = Pobs.Obs.snapshot () in
  Alcotest.(check bool) "crashes recorded" true
    (Pobs.Registry.counter_value snapshot "reactor.crashes" > 0)

(* ------------------------------------------------------------------ *)
(* Adversarial peers.  The headline invariant: with guards on, a sweep
   of seeded misbehaving peers never costs an honest negotiation its
   fault-free outcome, and every flooding/malformed adversary ends the
   run quarantined.  With guards at the permissive default the run still
   terminates (the adversary's action budget bounds the abuse). *)

let slow =
  match Sys.getenv_opt "CHECK_SLOW" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let adversary_seed_count = if slow then 100 else 40
let guard_config = { Session.default_config with Session.guard = Guard.defaults }

let mallory seed =
  Net.Adversary.create ~seed ~name:"Mallory"
    [ Net.Adversary.Flood 12; Net.Adversary.Malformed 4 ]

let trudy seed =
  Net.Adversary.create ~seed ~name:"Trudy"
    [
      Net.Adversary.Unsolicited 4;
      Net.Adversary.Forged_certs;
      Net.Adversary.Oversized 65536;
      Net.Adversary.Bomb 40;
      Net.Adversary.Replay;
    ]

let run_s1_with_adversaries ?(config = guard_config) adversaries =
  let s = Scenario.scenario1 ~config ~key_bits () in
  let reactor = Reactor.create s.Scenario.s1_session in
  List.iter (Reactor.add_adversary reactor) adversaries;
  let id =
    Reactor.submit reactor ~requester:"Alice" ~target:"E-Learn"
      (Scenario.scenario1_goal ())
  in
  let steps = Reactor.run ~max_steps:40_000 reactor in
  (Reactor.outcome reactor id, steps, reactor)

let test_adversary_sweep () =
  let baseline, _, _, _ = run_s1 () in
  Alcotest.(check bool) "fault-free baseline granted" true (granted baseline);
  Pobs.Obs.reset_metrics ();
  for seed = 1 to adversary_seed_count do
    let adversaries =
      [ mallory (Int64.of_int seed); trudy (Int64.of_int (seed + 5000)) ]
    in
    let outcome, steps, reactor =
      try run_s1_with_adversaries adversaries with
      | exn ->
          Alcotest.failf "seed %d: uncaught exception %s" seed
            (Printexc.to_string exn)
    in
    if steps >= 40_000 then Alcotest.failf "seed %d: hit step budget" seed;
    (match outcome with
    | Negotiation.Granted _ -> ()
    | Negotiation.Denied r ->
        Alcotest.failf "seed %d: honest negotiation denied: %s" seed r);
    let offenders =
      List.sort_uniq compare
        (List.map snd (Guard.quarantined (Reactor.guard reactor)))
    in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: Mallory quarantined" seed)
      true
      (List.mem "Mallory" offenders);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: Trudy quarantined" seed)
      true
      (List.mem "Trudy" offenders);
    List.iter
      (fun from ->
        if from <> "Mallory" && from <> "Trudy" then
          Alcotest.failf "seed %d: honest peer %s quarantined" seed from)
      offenders;
    Alcotest.(check int)
      (Printf.sprintf "seed %d: nothing parked" seed)
      0 (Reactor.parked_count reactor)
  done;
  let snapshot = Pobs.Obs.snapshot () in
  let count name = Pobs.Registry.counter_value snapshot name in
  Alcotest.(check bool) "abuse rejected" true (count "guard.rejected" > 0);
  Alcotest.(check bool) "quarantines recorded" true
    (count "guard.quarantines" > 0);
  Alcotest.(check bool) "adversaries acted" true
    (count "adversary.actions" > 0)

let test_unguarded_adversary_terminates () =
  (* Guard permissive: the abuse lands, but the action budget still
     bounds the run and the honest negotiation still grants. *)
  let outcome, steps, reactor =
    run_s1_with_adversaries ~config:Session.default_config
      [ mallory 3L; trudy 4L ]
  in
  Alcotest.(check bool) "terminates" true (steps < 40_000);
  Alcotest.(check bool) "honest goal still granted" true (granted outcome);
  Alcotest.(check (list (pair string string))) "nothing quarantined" []
    (Guard.quarantined (Reactor.guard reactor))

let test_guard_defaults_honest_byte_identical () =
  (* Guards on, no adversaries: honest scenario-1 traffic must not
     change a single transcript byte relative to the permissive run. *)
  let _, plain_steps, _, plain_net = run_s1 () in
  let s = Scenario.scenario1 ~config:guard_config ~key_bits () in
  let net = s.Scenario.s1_session.Session.network in
  let reactor = Reactor.create s.Scenario.s1_session in
  let id =
    Reactor.submit reactor ~requester:"Alice" ~target:"E-Learn"
      (Scenario.scenario1_goal ())
  in
  let steps = Reactor.run ~max_steps reactor in
  Alcotest.(check bool) "granted" true (granted (Reactor.outcome reactor id));
  Alcotest.(check (list string)) "transcript identical under guards"
    (transcript_sig plain_net) (transcript_sig net);
  Alcotest.(check int) "same steps" plain_steps steps

(* ------------------------------------------------------------------ *)
(* Tracing is observation only.  The pins: enabling the tracer changes
   no transcript byte, no step count and no outcome for either paper
   scenario (fault-free and under a seeded fault plan), and identically
   seeded traced runs export identical span logs. *)

let run_s1_traced ?faults () =
  let s = Scenario.scenario1 ~key_bits () in
  let net = s.Scenario.s1_session.Session.network in
  Option.iter (Net.Network.set_faults net) faults;
  let clock = Net.Network.clock net in
  let tracer = Pobs.Tracer.create ~now:(fun () -> Net.Clock.now clock) () in
  Pobs.Obs.set_tracer tracer;
  Fun.protect ~finally:Pobs.Obs.disable_tracing (fun () ->
      let reactor = Reactor.create s.Scenario.s1_session in
      let id =
        Reactor.submit reactor ~requester:"Alice" ~target:"E-Learn"
          (Scenario.scenario1_goal ())
      in
      let steps = Reactor.run ~max_steps reactor in
      (Reactor.outcome reactor id, steps, tracer, net))

let run_s2_traced ?faults () =
  let s = Scenario.scenario2 ~key_bits () in
  let net = s.Scenario.s2_session.Session.network in
  Option.iter (Net.Network.set_faults net) faults;
  let clock = Net.Network.clock net in
  let tracer = Pobs.Tracer.create ~now:(fun () -> Net.Clock.now clock) () in
  Pobs.Obs.set_tracer tracer;
  Fun.protect ~finally:Pobs.Obs.disable_tracing (fun () ->
      let reactor = Reactor.create s.Scenario.s2_session in
      let free =
        Reactor.submit reactor ~requester:"Bob" ~target:"E-Learn"
          (Scenario.scenario2_goal_free ())
      in
      let paid =
        Reactor.submit reactor ~requester:"Bob" ~target:"E-Learn"
          (Scenario.scenario2_goal_paid ())
      in
      let steps = Reactor.run ~max_steps reactor in
      ((Reactor.outcome reactor free, Reactor.outcome reactor paid), steps,
       tracer, net))

let test_tracing_transparent_scenario1 () =
  let check_plan label mk_faults =
    let off_out, off_steps, _, off_net = run_s1 ?faults:(mk_faults ()) () in
    let on_out, on_steps, tracer, on_net =
      run_s1_traced ?faults:(mk_faults ()) ()
    in
    Alcotest.(check (list string))
      (label ^ ": transcript byte-identical under tracing")
      (transcript_sig off_net) (transcript_sig on_net);
    Alcotest.(check int) (label ^ ": same steps") off_steps on_steps;
    Alcotest.(check bool)
      (label ^ ": same outcome")
      (granted off_out) (granted on_out);
    Alcotest.(check bool)
      (label ^ ": the traced run actually recorded spans")
      true
      (Pobs.Tracer.spans tracer <> [])
  in
  check_plan "fault-free" (fun () -> None);
  check_plan "faulted" (fun () -> Some (chaos_plan 7L))

let test_tracing_transparent_scenario2 () =
  let check_plan label mk_faults =
    let (off_free, off_paid), off_steps, _, off_net =
      run_s2 ?faults:(mk_faults ()) ()
    in
    let (on_free, on_paid), on_steps, _, on_net =
      run_s2_traced ?faults:(mk_faults ()) ()
    in
    Alcotest.(check (list string))
      (label ^ ": transcript byte-identical under tracing")
      (transcript_sig off_net) (transcript_sig on_net);
    Alcotest.(check int) (label ^ ": same steps") off_steps on_steps;
    Alcotest.(check (pair bool bool))
      (label ^ ": same outcomes")
      (granted off_free, granted off_paid)
      (granted on_free, granted on_paid)
  in
  check_plan "fault-free" (fun () -> None);
  check_plan "faulted" (fun () -> Some (chaos_plan 11L))

let test_trace_determinism () =
  (* Identically seeded traced runs export byte-identical span logs —
     span and trace ids are deterministic counters on the simulated
     clock, so the artifact is diffable across runs. *)
  let export () =
    let _, _, tracer, _ = run_s1_traced ~faults:(chaos_plan 13L) () in
    Pobs.Export.spans_to_jsonl (Pobs.Tracer.spans tracer)
  in
  let a = export () and b = export () in
  Alcotest.(check bool) "spans exported" true (String.length a > 0);
  Alcotest.(check string) "identical span JSONL across runs" a b;
  let causal () =
    let _, _, tracer, _ = run_s1_traced ~faults:(chaos_plan 13L) () in
    Pobs.Export.spans_to_causal_jsonl (Pobs.Tracer.spans tracer)
  in
  Alcotest.(check string) "identical causal stream across runs" (causal ())
    (causal ())

let test_transcript_ring_buffer () =
  let net = Net.Network.create ~log_cap:8 () in
  Net.Network.register net "b" (fun ~from:_ _ -> Net.Message.Ack);
  for _ = 1 to 20 do
    Net.Network.notify net ~from:"a" ~target:"b" Net.Message.Ack
  done;
  Alcotest.(check int) "ring keeps cap entries" 8
    (List.length (Net.Network.transcript net));
  Alcotest.(check int) "dropped entries counted" 12
    (Net.Network.dropped_log_entries net);
  let newest_first = List.rev (Net.Network.transcript net) in
  Alcotest.(check int) "newest entry retained" 20
    (match newest_first with e :: _ -> e.Net.Network.time | [] -> -1);
  Net.Network.clear_transcript net;
  Alcotest.(check int) "clear resets the drop count" 0
    (Net.Network.dropped_log_entries net)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "chaos"
    [
      ( "sweeps",
        [
          tc "scenario 1 under 100 seeds" test_chaos_sweep_scenario1;
          tc "scenario 2 under 100 seeds" test_chaos_sweep_scenario2;
        ] );
      ( "cache",
        [
          tc "scenario 1: cache on == cache off under faults"
            test_cache_equivalence_scenario1;
          tc "scenario 2: cache on == cache off under faults"
            test_cache_equivalence_scenario2;
        ] );
      ( "tabling",
        [
          tc "cyclic accreditation web under 100 seeds"
            test_tabling_chaos_sweep;
          tc "fault-free cyclic transcript pinned"
            test_tabling_fault_free_pinned;
        ] );
      ( "crash",
        [
          tc "scenario 1 crash schedules under 100 seeds"
            test_crash_chaos_sweep;
          tc "crash-free schedule with journals is byte-identical"
            test_crash_free_schedule_byte_identical;
          tc "cyclic tables recover across member restarts"
            test_crash_tabling_recovers_tables;
        ] );
      ( "identity",
        [
          tc "zero faults are byte-identical" test_zero_faults_byte_identical;
          tc "same seed, same schedule" test_same_seed_same_schedule;
        ] );
      ( "degradation",
        [
          tc "outage rides out on retries" test_outage_recovers_with_retries;
          tc "black hole times out" test_black_hole_times_out;
          tc "duplicates are idempotent" test_duplicates_are_idempotent;
        ] );
      ( "adversaries",
        [
          tc "guarded sweep: honest outcome, adversaries quarantined"
            test_adversary_sweep;
          tc "unguarded adversaries terminate"
            test_unguarded_adversary_terminates;
          tc "guards on honest traffic are byte-identical"
            test_guard_defaults_honest_byte_identical;
        ] );
      ( "tracing",
        [
          tc "scenario 1 transcripts identical with tracing on"
            test_tracing_transparent_scenario1;
          tc "scenario 2 transcripts identical with tracing on"
            test_tracing_transparent_scenario2;
          tc "same seed, same span log" test_trace_determinism;
        ] );
      ( "bounds",
        [ tc "transcript ring buffer" test_transcript_ring_buffer ] );
    ]

(* Tests for the observability layer: spans, metrics, exporters, and the
   engine instrumentation feeding them during a real scenario run. *)

open Peertrust_obs
module Core = Peertrust
module Net = Peertrust_net

(* ------------------------------------------------------------------ *)
(* Spans and tracer *)

let span_names spans = List.map (fun (s : Span.t) -> s.Span.name) spans

let test_span_nesting () =
  let t = Tracer.create () in
  let result =
    Tracer.with_span t "outer" (fun () ->
        Tracer.with_span t "inner1" (fun () -> ());
        Tracer.with_span t "inner2" (fun () -> 42))
  in
  Alcotest.(check int) "result passes through" 42 result;
  let spans = Tracer.spans t in
  Alcotest.(check (list string))
    "start order" [ "outer"; "inner1"; "inner2" ] (span_names spans);
  let find name = List.find (fun (s : Span.t) -> s.Span.name = name) spans in
  let outer = find "outer" in
  Alcotest.(check (option int)) "outer is a root" None outer.Span.parent;
  Alcotest.(check (option int))
    "inner1 child of outer" (Some outer.Span.id) (find "inner1").Span.parent;
  Alcotest.(check (option int))
    "inner2 child of outer (sibling of inner1)" (Some outer.Span.id)
    (find "inner2").Span.parent;
  List.iter
    (fun (s : Span.t) ->
      Alcotest.(check bool)
        (s.Span.name ^ " finished") true
        (s.Span.end_ticks <> None))
    spans

let test_span_clock_and_events () =
  let ticks = ref 0 in
  let t = Tracer.create ~now:(fun () -> !ticks) () in
  Tracer.with_span t "work" (fun () ->
      ticks := 3;
      Tracer.event t "milestone";
      Tracer.set_attr t "k" (Json.Str "v");
      ticks := 7);
  match Tracer.spans t with
  | [ s ] ->
      Alcotest.(check int) "start ticks" 0 s.Span.start_ticks;
      Alcotest.(check (option int)) "end ticks" (Some 7) s.Span.end_ticks;
      Alcotest.(check int) "duration" 7 (Span.duration s);
      (match Span.events s with
      | [ e ] ->
          Alcotest.(check int) "event tick" 3 e.Span.at;
          Alcotest.(check string) "event message" "milestone" e.Span.message
      | es -> Alcotest.failf "expected 1 event, got %d" (List.length es));
      Alcotest.(check bool)
        "attr recorded" true
        (List.mem_assoc "k" (Span.attrs s))
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

let test_span_exception_safety () =
  let t = Tracer.create () in
  (try Tracer.with_span t "boom" (fun () -> failwith "expected") with
  | Failure _ -> ());
  match Tracer.finished t with
  | [ s ] -> Alcotest.(check string) "span closed" "boom" s.Span.name
  | _ -> Alcotest.fail "span not finished on exceptional exit"

let test_noop_tracer () =
  Alcotest.(check bool) "noop disabled" false (Tracer.enabled Tracer.noop);
  let r = Tracer.with_span Tracer.noop "ignored" (fun () -> 7) in
  Alcotest.(check int) "thunk still runs" 7 r;
  Alcotest.(check int) "nothing recorded" 0
    (List.length (Tracer.spans Tracer.noop))

(* ------------------------------------------------------------------ *)
(* Trace context: the propagated identity and its wire header *)

let ctx_testable =
  Alcotest.testable Trace_context.pp Trace_context.equal

let test_trace_context_roundtrip () =
  let check_rt c =
    let h = Trace_context.to_header c in
    Alcotest.(check int)
      "fixed width" Trace_context.header_length (String.length h);
    Alcotest.(check (option ctx_testable))
      ("round-trip of " ^ h) (Some c) (Trace_context.of_header h)
  in
  check_rt (Trace_context.make ~trace_id:1 ~parent_span:0 ());
  check_rt (Trace_context.make ~trace_id:194 ~parent_span:31 ());
  check_rt (Trace_context.make ~sampled:false ~trace_id:7 ~parent_span:2 ());
  check_rt (Trace_context.make ~trace_id:max_int ~parent_span:max_int ())

let test_trace_context_child () =
  let root = Trace_context.make ~trace_id:9 ~parent_span:0 () in
  let c = Trace_context.child root ~parent_span:42 in
  Alcotest.(check int) "same trace" 9 c.Trace_context.trace_id;
  Alcotest.(check int) "re-parented" 42 c.Trace_context.parent_span;
  Alcotest.(check bool) "sampling preserved" true c.Trace_context.sampled

let test_trace_context_garbage () =
  let bad =
    [
      "";
      "pt1";
      "pt2-00000000000000c2-000000000000001f-01" (* wrong version *);
      "pt1-00000000000000c2-000000000000001f-02" (* bad flag *);
      "pt1-00000000000000c2-000000000000001f" (* truncated *);
      "pt1-00000000000000c2-000000000000001f-01x" (* trailing junk *);
      "pt1-zz000000000000c2-000000000000001f-01" (* non-hex *);
      "pt1-0000000000000000-000000000000001f-01" (* trace id 0 *);
      String.make Trace_context.header_length 'a';
    ]
  in
  List.iter
    (fun h ->
      Alcotest.(check (option ctx_testable))
        (Printf.sprintf "rejects %S" h)
        None (Trace_context.of_header h))
    bad

let test_tracer_mint_and_join () =
  let t = Tracer.create () in
  Alcotest.(check (option ctx_testable))
    "noop mints nothing" None (Tracer.mint Tracer.noop);
  let a = Option.get (Tracer.mint t) in
  let b = Option.get (Tracer.mint t) in
  Alcotest.(check bool) "fresh trace ids" true
    (a.Trace_context.trace_id <> b.Trace_context.trace_id);
  Alcotest.(check int) "root has no parent span" 0 a.Trace_context.parent_span;
  (* An explicit context wins over the local stack: the span joins the
     context's trace with the context's parent, as after a wire hop. *)
  let remote = Trace_context.make ~trace_id:77 ~parent_span:5 () in
  Tracer.with_span t "local-root" (fun () ->
      Tracer.with_span t ~ctx:remote "joined" (fun () -> ()));
  let find name =
    List.find (fun (s : Span.t) -> s.Span.name = name) (Tracer.spans t)
  in
  let joined = find "joined" in
  Alcotest.(check int) "joins the remote trace" 77 joined.Span.trace;
  Alcotest.(check (option int))
    "parented under the remote span" (Some 5) joined.Span.parent;
  Alcotest.(check int) "local root stays untraced" 0
    (find "local-root").Span.trace

let test_tracer_current_context () =
  let t = Tracer.create () in
  Alcotest.(check (option ctx_testable))
    "no open span, no context" None (Tracer.current_context t);
  let ctx = Tracer.mint t in
  Tracer.with_span t ?ctx "root" (fun () ->
      match Tracer.current_context t with
      | None -> Alcotest.fail "traced span must yield a context"
      | Some c ->
          let root = Option.get (Tracer.current t) in
          Alcotest.(check int)
            "carries the minted trace"
            (Option.get ctx).Trace_context.trace_id c.Trace_context.trace_id;
          Alcotest.(check int)
            "parent is the open span" root.Span.id c.Trace_context.parent_span);
  (* An untraced span offers no context to propagate. *)
  Tracer.with_span t "untraced" (fun () ->
      Alcotest.(check (option ctx_testable))
        "untraced span yields none" None (Tracer.current_context t))

let test_tracer_unsampled_suppressed () =
  let t = Tracer.create () in
  let unsampled = Trace_context.make ~sampled:false ~trace_id:3 ~parent_span:0 () in
  Alcotest.(check bool)
    "start suppressed" true
    (Tracer.start t ~ctx:unsampled "quiet" = None);
  Tracer.with_span t ~ctx:unsampled "quiet2" (fun () -> ());
  Alcotest.(check int)
    "record suppressed" 0
    (List.length (Tracer.spans t)
    + Option.fold ~none:0 ~some:(fun _ -> 1)
        (Tracer.record t ~ctx:unsampled ~name:"quiet3" ~start_ticks:0
           ~end_ticks:1 ()))

let test_tracer_record_retrospective () =
  let ticks = ref 50 in
  let t = Tracer.create ~now:(fun () -> !ticks) () in
  let ctx = Trace_context.make ~trace_id:4 ~parent_span:1 () in
  Tracer.with_span t "live" (fun () ->
      (* Recording never touches the open-span stack. *)
      let wire =
        Option.get
          (Tracer.record t ~ctx ~name:"net.wire" ~start_ticks:10 ~end_ticks:20
             ())
      in
      Alcotest.(check int) "given extent kept" 10 wire.Span.start_ticks;
      Alcotest.(check (option int)) "closed at end tick" (Some 20)
        wire.Span.end_ticks;
      Alcotest.(check int) "joins the context trace" 4 wire.Span.trace;
      Alcotest.(check string)
        "stack undisturbed" "live"
        (Option.get (Tracer.current t)).Span.name);
  (* The sort contract: retrospective spans surface in start order even
     though they were recorded later. *)
  match span_names (Tracer.spans t) with
  | [ "net.wire"; "live" ] -> ()
  | names -> Alcotest.failf "unexpected order: %s" (String.concat "," names)

(* ------------------------------------------------------------------ *)
(* Histograms *)

let test_histogram_buckets () =
  let h = Metric.histogram ~buckets:[| 1.; 10.; 100. |] "h" in
  List.iter (Metric.observe_int h) [ 0; 1; 2; 10; 50; 1000 ];
  Alcotest.(check (array int)) "bucket counts" [| 2; 2; 1; 1 |] h.Metric.counts;
  Alcotest.(check int) "count" 6 h.Metric.count;
  let hs = Metric.snapshot_histogram h in
  Alcotest.(check (float 1e-9)) "sum" 1063. hs.Metric.hs_sum;
  Alcotest.(check (float 1e-9))
    "mean" (1063. /. 6.) (Metric.mean hs)

let test_histogram_percentiles () =
  let h = Metric.histogram ~buckets:[| 1.; 2.; 4.; 8. |] "p" in
  (* 10 samples: four 1s, three 2s, two 4s, one 8. *)
  List.iter (Metric.observe_int h) [ 1; 1; 1; 1; 2; 2; 2; 4; 4; 8 ];
  let hs = Metric.snapshot_histogram h in
  Alcotest.(check (float 1e-9)) "p25 in first bucket" 1. (Metric.percentile hs 0.25);
  Alcotest.(check (float 1e-9)) "p50 in second bucket" 2. (Metric.percentile hs 0.5);
  Alcotest.(check (float 1e-9)) "p90 in third bucket" 4. (Metric.percentile hs 0.9);
  Alcotest.(check (float 1e-9)) "p100" 8. (Metric.percentile hs 1.);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Metric.percentile: q outside [0,1]") (fun () ->
      ignore (Metric.percentile hs 1.5))

let test_histogram_min_max () =
  let h = Metric.histogram ~buckets:[| 10.; 100. |] "mm" in
  let hs0 = Metric.snapshot_histogram h in
  Alcotest.(check (float 1e-9)) "empty min is 0" 0. hs0.Metric.hs_min;
  Alcotest.(check (float 1e-9)) "empty max is 0" 0. hs0.Metric.hs_max;
  List.iter (Metric.observe_int h) [ 7; 3; 250 ];
  let hs = Metric.snapshot_histogram h in
  Alcotest.(check (float 1e-9)) "min tracked" 3. hs.Metric.hs_min;
  Alcotest.(check (float 1e-9)) "max tracked" 250. hs.Metric.hs_max;
  Metric.reset_histogram h;
  let hs' = Metric.snapshot_histogram h in
  Alcotest.(check (float 1e-9)) "reset clears min" 0. hs'.Metric.hs_min;
  Alcotest.(check (float 1e-9)) "reset clears max" 0. hs'.Metric.hs_max

let test_percentile_overflow_reports_max () =
  (* Samples past the last bound land in the unbounded overflow bucket;
     its percentile must report the observed maximum, not a mean. *)
  let h = Metric.histogram ~buckets:[| 1.; 2. |] "ov" in
  List.iter (Metric.observe_int h) [ 1; 100; 9000 ];
  let hs = Metric.snapshot_histogram h in
  Alcotest.(check (float 1e-9))
    "p100 is the observed max" 9000. (Metric.percentile hs 1.);
  Alcotest.(check (float 1e-9))
    "p90 also in the overflow bucket" 9000. (Metric.percentile hs 0.9);
  (* Monotone even when the only sample sits below the last bound. *)
  let g = Metric.histogram ~buckets:[| 1.; 1024. |] "cl" in
  Metric.observe_int g 2;
  let gs = Metric.snapshot_histogram g in
  Alcotest.(check bool) "clamped to the last bound" true
    (Metric.percentile gs 1. >= Metric.percentile gs 0.5)

let test_min_max_survive_merge () =
  let mk samples =
    let h = Metric.histogram ~buckets:[| 8. |] "m" in
    List.iter (Metric.observe_int h) samples;
    Metric.snapshot_histogram h
  in
  let m = Metric.merge_histogram_snapshots (mk [ 4; 9 ]) (mk [ 2; 30 ]) in
  Alcotest.(check (float 1e-9)) "merged min" 2. m.Metric.hs_min;
  Alcotest.(check (float 1e-9)) "merged max" 30. m.Metric.hs_max

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_registry_merge () =
  let make c1 hsamples gauge =
    let r = Registry.create () in
    Metric.add (Registry.counter r "c") c1;
    let h = Registry.histogram ~buckets:[| 1.; 2. |] r "h" in
    List.iter (Metric.observe_int h) hsamples;
    Metric.set (Registry.gauge r "g") gauge;
    Registry.snapshot r
  in
  let a = make 3 [ 1; 2 ] 1.0 in
  let b = make 4 [ 2; 5 ] 2.0 in
  let m = Registry.merge a b in
  Alcotest.(check int) "counters add" 7 (Registry.counter_value m "c");
  Alcotest.(check (list (pair string (float 1e-9))))
    "right gauge wins" [ ("g", 2.0) ] m.Registry.sn_gauges;
  (match Registry.histogram_snapshot m "h" with
  | Some hs ->
      Alcotest.(check (array int)) "histogram buckets add" [| 1; 2; 1 |]
        hs.Metric.hs_counts;
      Alcotest.(check int) "histogram count adds" 4 hs.Metric.hs_count
  | None -> Alcotest.fail "merged histogram missing");
  (* Merging with the empty snapshot is the identity. *)
  let id = Registry.merge a Registry.empty_snapshot in
  Alcotest.(check int) "identity merge" 3 (Registry.counter_value id "c")

let test_registry_reset_keeps_cells () =
  let r = Registry.create () in
  let c = Registry.counter r "c" in
  Metric.incr c;
  Registry.reset r;
  Alcotest.(check int) "zeroed" 0 (Metric.value c);
  Metric.incr c;
  Alcotest.(check int) "cell still registered" 1
    (Registry.counter_value (Registry.snapshot r) "c")

(* ------------------------------------------------------------------ *)
(* Exporters *)

let test_metrics_json_roundtrip () =
  let r = Registry.create () in
  Metric.add (Registry.counter r "queries") 12;
  Metric.set (Registry.gauge r "load") 0.5;
  let h = Registry.histogram r "steps" in
  List.iter (Metric.observe_int h) [ 1; 3; 70000 ];
  let snap = Registry.snapshot r in
  let text = Export.metrics_to_string ~label:"test" snap in
  (* The schema tag is embedded verbatim. *)
  (match Json.of_string text with
  | Ok json ->
      Alcotest.(check (option string))
        "schema tag" (Some Registry.schema_version)
        (Option.bind (Json.member "schema" json) Json.to_str)
  | Error e -> Alcotest.failf "export not valid JSON: %s" e);
  match Export.metrics_of_string text with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok snap' ->
      Alcotest.(check int) "counter survives" 12
        (Registry.counter_value snap' "queries");
      Alcotest.(check (list (pair string (float 1e-9))))
        "gauge survives" snap.Registry.sn_gauges snap'.Registry.sn_gauges;
      (match Registry.histogram_snapshot snap' "steps" with
      | Some hs ->
          let orig = Metric.snapshot_histogram h in
          Alcotest.(check (array int)) "buckets survive" orig.Metric.hs_counts
            hs.Metric.hs_counts;
          Alcotest.(check int) "count survives" 3 hs.Metric.hs_count
      | None -> Alcotest.fail "histogram lost in round-trip")

let test_metrics_json_minmax () =
  let r = Registry.create () in
  let h = Registry.histogram ~buckets:[| 4.; 16. |] r "lat" in
  List.iter (Metric.observe_int h) [ 2; 11; 90 ];
  let text = Export.metrics_to_string (Registry.snapshot r) in
  match Export.metrics_of_string text with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok snap -> (
      match Registry.histogram_snapshot snap "lat" with
      | Some hs ->
          Alcotest.(check (float 1e-9)) "min survives" 2. hs.Metric.hs_min;
          Alcotest.(check (float 1e-9)) "max survives" 90. hs.Metric.hs_max
      | None -> Alcotest.fail "histogram lost in round-trip")

let test_metrics_json_legacy_no_minmax () =
  (* BENCH_*.json files written before min/max tracking lack the fields;
     the loader must reconstruct stand-ins, not reject the file. *)
  let legacy =
    Printf.sprintf
      {|{"schema": %S, "counters": {}, "gauges": {},
         "histograms": {"lat": {"buckets": [{"le": 4, "count": 1},
                                            {"le": 16, "count": 1},
                                            {"le": "+inf", "count": 1}],
                                "sum": 103, "count": 3}}}|}
      Registry.schema_version
  in
  match Export.metrics_of_string legacy with
  | Error e -> Alcotest.failf "legacy snapshot rejected: %s" e
  | Ok snap -> (
      match Registry.histogram_snapshot snap "lat" with
      | Some hs ->
          Alcotest.(check int) "count parsed" 3 hs.Metric.hs_count;
          Alcotest.(check (float 1e-9))
            "max falls back to the last bound" 16. hs.Metric.hs_max;
          Alcotest.(check bool) "percentiles stay monotone" true
            (Metric.percentile hs 1. >= Metric.percentile hs 0.5)
      | None -> Alcotest.fail "legacy histogram missing")

let test_spans_jsonl_roundtrip () =
  let t = Tracer.create () in
  Tracer.with_span t "negotiation" (fun () ->
      Tracer.with_span t
        ~attrs:[ ("goal", Json.Str {|p("x")|}); ("depth", Json.Int 3) ]
        "query"
        (fun () -> Tracer.event t "hit"));
  let spans = Tracer.spans t in
  let text = Export.spans_to_jsonl spans in
  Alcotest.(check int) "one line per span" (List.length spans)
    (List.length
       (List.filter
          (fun l -> String.trim l <> "")
          (String.split_on_char '\n' text)));
  match Export.spans_of_jsonl text with
  | Error e -> Alcotest.failf "JSONL parse failed: %s" e
  | Ok spans' ->
      Alcotest.(check (list string))
        "names survive" (span_names spans) (span_names spans');
      let q = List.nth spans' 1 in
      Alcotest.(check (option int))
        "parent link survives"
        (Some (List.nth spans 0).Span.id)
        q.Span.parent;
      Alcotest.(check bool) "attrs survive" true
        (List.mem_assoc "goal" (Span.attrs q));
      Alcotest.(check int) "events survive" 1 (List.length (Span.events q))

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_span_tree_render () =
  let t = Tracer.create () in
  Tracer.with_span t "root" (fun () ->
      Tracer.with_span t "child" (fun () -> ()));
  let tree = Export.span_tree (Tracer.spans t) in
  Alcotest.(check bool) "root present" true (contains ~sub:"root" tree);
  Alcotest.(check bool) "child indented under root" true
    (contains ~sub:"  child" tree)

(* Spans for the exporter and timeline tests: one two-peer trace with a
   wire hop, plus an untraced stray. *)
let synthetic_spans () =
  let ticks = ref 0 in
  let t = Tracer.create ~now:(fun () -> !ticks) () in
  let ctx = Option.get (Tracer.mint t) in
  let nego =
    Option.get
      (Tracer.start t ~ctx ~attrs:[ ("peer", Json.Str "Alice") ] "negotiation")
  in
  ticks := 2;
  let send_ctx = Option.get (Tracer.current_context t) in
  let wire =
    Option.get
      (Tracer.record t ~ctx:send_ctx ~name:"net.wire" ~start_ticks:2
         ~end_ticks:7 ())
  in
  ticks := 7;
  let recv_ctx = Trace_context.child send_ctx ~parent_span:wire.Span.id in
  let recv =
    Option.get
      (Tracer.start t ~ctx:recv_ctx
         ~attrs:[ ("peer", Json.Str "E-Learn") ]
         "recv.query")
  in
  Tracer.event t "guard.quarantine Mallory";
  ticks := 10;
  Tracer.finish t (Some recv);
  Tracer.finish t (Some nego);
  Tracer.with_span t "stray" (fun () -> ());
  Tracer.spans t

let test_chrome_export () =
  let spans = synthetic_spans () in
  let doc = Export.spans_to_chrome spans in
  match Json.of_string doc with
  | Error e -> Alcotest.failf "chrome export not valid JSON: %s" e
  | Ok json -> (
      match Json.member "traceEvents" json with
      | Some (Json.List events) ->
          Alcotest.(check bool) "events emitted" true (List.length events > 0);
          let phases =
            List.filter_map
              (fun e -> Option.bind (Json.member "ph" e) Json.to_str)
              events
          in
          Alcotest.(check bool) "complete events present" true
            (List.mem "X" phases);
          Alcotest.(check bool) "instant events present" true
            (List.mem "i" phases)
      | _ -> Alcotest.fail "traceEvents missing")

let test_causal_export () =
  let spans = synthetic_spans () in
  let doc = Export.spans_to_causal_jsonl spans in
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' doc)
  in
  Alcotest.(check bool) "one record per start/event/end" true
    (List.length lines > List.length spans);
  let ticks =
    List.map
      (fun l ->
        match Json.of_string l with
        | Error e -> Alcotest.failf "causal line not JSON: %s (%s)" l e
        | Ok j -> (
            match Option.bind (Json.member "t" j) Json.to_int with
            | Some at -> at
            | None -> Alcotest.failf "causal line lacks a tick: %s" l))
      lines
  in
  Alcotest.(check bool) "tick-ordered" true
    (List.for_all2 ( <= ) ticks
       (match ticks with [] -> [] | _ :: tl -> tl @ [ max_int ]))

(* ------------------------------------------------------------------ *)
(* Timeline reconstruction *)

let test_timeline_build () =
  let spans = synthetic_spans () in
  match Timeline.build spans with
  | [ tl ] ->
      Alcotest.(check int) "one trace, untraced stray ignored" 1
        tl.Timeline.tl_trace;
      Alcotest.(check string)
        "root is the negotiation" "negotiation"
        (match tl.Timeline.tl_root with
        | Some s -> s.Span.name
        | None -> "(none)");
      let lanes = List.map fst tl.Timeline.tl_lanes in
      Alcotest.(check bool) "a lane per peer" true
        (List.mem "Alice" lanes && List.mem "E-Learn" lanes);
      (* The critical path runs root -> wire hop -> receiver. *)
      Alcotest.(check (list string))
        "critical path" [ "negotiation"; "net.wire"; "recv.query" ]
        (span_names tl.Timeline.tl_critical);
      Alcotest.(check int) "trace extent" 10
        (tl.Timeline.tl_end - tl.Timeline.tl_start);
      (* Self time: the wire hop owns [2,6) minus the receiver's overlap. *)
      let bd cat =
        Option.value ~default:0 (List.assoc_opt cat tl.Timeline.tl_breakdown)
      in
      Alcotest.(check bool) "wire time attributed" true (bd Timeline.Wire > 0);
      Alcotest.(check bool) "queue time attributed" true
        (bd Timeline.Queue > 0);
      let rendered = Timeline.to_string tl in
      List.iter
        (fun sub ->
          Alcotest.(check bool)
            (sub ^ " rendered") true (contains ~sub rendered))
        [ "Alice"; "E-Learn"; "critical path"; "net.wire" ]
  | tls -> Alcotest.failf "expected 1 timeline, got %d" (List.length tls)

let test_timeline_anomalies () =
  let spans = synthetic_spans () in
  let tl = List.hd (Timeline.build spans) in
  (* The synthetic trace carries one quarantine event. *)
  Alcotest.(check bool) "breaker trip flagged" true
    (List.exists
       (function Timeline.Breaker_trip _ -> true | _ -> false)
       tl.Timeline.tl_anomalies);
  Alcotest.(check bool) "no storm on a clean trace" true
    (not
       (List.exists
          (function Timeline.Retransmit_storm _ -> true | _ -> false)
          tl.Timeline.tl_anomalies));
  (* Storms and stampedes: build a trace with retransmit spans and a
     same-tick invalidation burst. *)
  let t = Tracer.create () in
  let ctx = Option.get (Tracer.mint t) in
  Tracer.with_span t ~ctx "negotiation" (fun () ->
      for i = 1 to Timeline.storm_threshold do
        Tracer.with_span t "reactor.retry" (fun () ->
            Tracer.event t (Printf.sprintf "reactor.retry #%d" i))
      done;
      Tracer.event t "cache.invalidate 3 entries";
      Tracer.event t "cache.invalidate 1 entry");
  let tl = List.hd (Timeline.build (Tracer.spans t)) in
  let retries =
    List.find_map
      (function
        | Timeline.Retransmit_storm { retries; _ } -> Some retries | _ -> None)
      tl.Timeline.tl_anomalies
  in
  (* Each retry is one occurrence: the span and any event inside it must
     not double-count. *)
  Alcotest.(check (option int))
    "storm flagged, retries counted once" (Some Timeline.storm_threshold)
    retries;
  Alcotest.(check bool) "stampede flagged" true
    (List.exists
       (function Timeline.Cache_stampede _ -> true | _ -> false)
       tl.Timeline.tl_anomalies)

let test_timeline_restart_storm () =
  (* Crash-stop restarts surface on the trace as reactor.restart events;
     enough of them in one trace is flagged as a restart storm. *)
  let storm n =
    let t = Tracer.create () in
    let ctx = Option.get (Tracer.mint t) in
    Tracer.with_span t ~ctx "negotiation" (fun () ->
        Tracer.event t "reactor.crash E-Learn @5";
        for i = 1 to n do
          Tracer.event t
            (Printf.sprintf "reactor.restart E-Learn (incarnation %d)" i)
        done);
    let tl = List.hd (Timeline.build (Tracer.spans t)) in
    List.find_map
      (function
        | Timeline.Restart_storm { restarts } -> Some restarts | _ -> None)
      tl.Timeline.tl_anomalies
  in
  Alcotest.(check (option int))
    "storm flagged at the threshold"
    (Some Timeline.restart_storm_threshold)
    (storm Timeline.restart_storm_threshold);
  Alcotest.(check (option int))
    "a single restart is recovery, not a storm" None
    (storm (Timeline.restart_storm_threshold - 1))

(* ------------------------------------------------------------------ *)
(* Bench-regression diffs *)

let diff_snapshot counters =
  let r = Registry.create () in
  List.iter (fun (name, v) -> Metric.add (Registry.counter r name) v) counters;
  Registry.snapshot r

let test_diff_identical_passes () =
  let snap = diff_snapshot [ ("net.messages", 40); ("sld.steps", 900) ] in
  let report = Diff.compare_snapshots ~baseline:snap ~fresh:snap () in
  Alcotest.(check bool) "identical snapshots pass" true report.Diff.r_ok;
  Alcotest.(check int) "everything compared" 2 report.Diff.r_checked;
  Alcotest.(check (list string)) "nothing missing" [] report.Diff.r_missing

let test_diff_regression_fails () =
  let baseline = diff_snapshot [ ("net.messages", 400) ] in
  let fresh = diff_snapshot [ ("net.messages", 1300) ] in
  let report = Diff.compare_snapshots ~baseline ~fresh () in
  Alcotest.(check bool) "2x regression fails" false report.Diff.r_ok;
  (match report.Diff.r_violations with
  | [ v ] ->
      Alcotest.(check string) "names the metric" "net.messages" v.Diff.v_metric;
      let lo, hi = v.Diff.v_allowed in
      Alcotest.(check bool) "band excludes the fresh value" true
        (v.Diff.v_fresh < lo || v.Diff.v_fresh > hi)
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs));
  (* Collapse below the band is lost coverage, equally a failure. *)
  let report' =
    Diff.compare_snapshots ~baseline ~fresh:(diff_snapshot [ ("net.messages", 3) ]) ()
  in
  Alcotest.(check bool) "collapse fails too" false report'.Diff.r_ok

let test_diff_timing_tolerance () =
  (* Wall-clock metrics get the wide timing band: a 3x drift passes
     where a counter would fail. *)
  Alcotest.(check bool) ".ms is timing" true (Diff.is_timing "resolution.deep_chain.ms");
  Alcotest.(check bool) "counter is not" false (Diff.is_timing "net.messages");
  let mk v =
    let r = Registry.create () in
    Metric.set (Registry.gauge r "resolution.deep_chain.ms") v;
    Registry.snapshot r
  in
  let report = Diff.compare_snapshots ~baseline:(mk 600.) ~fresh:(mk 1800.) () in
  Alcotest.(check bool) "3x timing drift tolerated" true report.Diff.r_ok;
  let report' = Diff.compare_snapshots ~baseline:(mk 600.) ~fresh:(mk 9000.) () in
  Alcotest.(check bool) "15x timing drift still fails" false report'.Diff.r_ok

let test_diff_missing_and_extra () =
  let baseline = diff_snapshot [ ("net.messages", 10); ("net.drops", 5) ] in
  let fresh = diff_snapshot [ ("net.messages", 10); ("guard.rejected", 2) ] in
  let report = Diff.compare_snapshots ~baseline ~fresh () in
  Alcotest.(check bool) "missing metric fails" false report.Diff.r_ok;
  Alcotest.(check (list string)) "missing named" [ "net.drops" ]
    report.Diff.r_missing;
  Alcotest.(check (list string)) "extra is informational" [ "guard.rejected" ]
    report.Diff.r_extra;
  (* Extra alone must not fail the gate — new instrumentation lands
     before its baseline is regenerated. *)
  let fresh' = diff_snapshot [ ("net.messages", 10); ("net.drops", 5); ("x", 1) ] in
  let report' = Diff.compare_snapshots ~baseline ~fresh:fresh' () in
  Alcotest.(check bool) "extra alone passes" true report'.Diff.r_ok

let test_diff_histogram_facets () =
  let mk samples =
    let r = Registry.create () in
    let h = Registry.histogram ~buckets:[| 8.; 64. |] r "negotiation.messages" in
    List.iter (Metric.observe_int h) samples;
    Registry.snapshot r
  in
  let ok =
    Diff.compare_snapshots ~baseline:(mk [ 4; 20 ]) ~fresh:(mk [ 5; 21 ]) ()
  in
  Alcotest.(check bool) "close histograms pass" true ok.Diff.r_ok;
  (* A max blow-up is caught via the .max facet even when count holds. *)
  let bad =
    Diff.compare_snapshots ~baseline:(mk [ 4; 20 ]) ~fresh:(mk [ 4; 4000 ]) ()
  in
  Alcotest.(check bool) "max regression caught" false bad.Diff.r_ok;
  Alcotest.(check bool) "violation names the facet" true
    (List.exists
       (fun v -> v.Diff.v_metric = "negotiation.messages.max")
       bad.Diff.r_violations)

let test_diff_report_json () =
  let baseline = diff_snapshot [ ("net.messages", 400) ] in
  let fresh = diff_snapshot [ ("net.messages", 1300) ] in
  let report = Diff.compare_snapshots ~baseline ~fresh () in
  let j = Diff.report_to_json report in
  Alcotest.(check (option string))
    "machine-readable verdict" (Some "fail")
    (Option.bind (Json.member "verdict" j) Json.to_str);
  Alcotest.(check (option string))
    "schema tag" (Some "peertrust.benchdiff/1")
    (Option.bind (Json.member "schema" j) Json.to_str)

(* ------------------------------------------------------------------ *)
(* Integration: a scenario run feeds the ambient registry and tracer *)

let test_scenario_instrumentation () =
  Obs.reset_metrics ();
  let s = Core.Scenario.scenario1 () in
  let session = s.Core.Scenario.s1_session in
  let clock = Net.Network.clock session.Core.Session.network in
  Obs.set_tracer (Tracer.create ~now:(fun () -> Net.Clock.now clock) ());
  Fun.protect ~finally:Obs.disable_tracing (fun () ->
      let r =
        Core.Negotiation.request_str session ~requester:"Alice"
          ~target:"E-Learn" {|discountEnroll(spanish101, "Alice")|}
      in
      Alcotest.(check bool) "negotiation granted" true
        (Core.Negotiation.succeeded r);
      let snap = Obs.snapshot () in
      let nonzero name =
        Alcotest.(check bool)
          (name ^ " counted") true
          (Registry.counter_value snap name > 0)
      in
      List.iter nonzero
        [
          "engine.queries"; "engine.answers"; "net.messages";
          "net.messages.query"; "sld.queries"; "sld.steps";
          "negotiation.count"; "negotiation.granted";
        ];
      (match Registry.histogram_snapshot snap "negotiation.messages" with
      | Some hs -> Alcotest.(check int) "one negotiation observed" 1
            hs.Metric.hs_count
      | None -> Alcotest.fail "negotiation.messages histogram missing");
      (* The span tree nests negotiation > query > resolution. *)
      let spans = Obs.spans () in
      let find name =
        List.find_opt (fun (sp : Span.t) -> sp.Span.name = name) spans
      in
      let get name =
        match find name with
        | Some sp -> sp
        | None -> Alcotest.failf "missing %S span" name
      in
      let nego = get "negotiation" in
      let query = get "query" in
      let sld = get "sld.solve" in
      Alcotest.(check (option int)) "negotiation is a root" None
        nego.Span.parent;
      Alcotest.(check (option string))
        "query under negotiation (via net.send)"
        (Some "negotiation")
        (let rec root_of (sp : Span.t) =
           match sp.Span.parent with
           | None -> Some sp.Span.name
           | Some pid -> (
               match
                 List.find_opt (fun (p : Span.t) -> p.Span.id = pid) spans
               with
               | Some p -> root_of p
               | None -> None)
         in
         root_of query);
      Alcotest.(check bool) "sld.solve nested below query" true
        (sld.Span.id > query.Span.id && sld.Span.parent <> None))

(* Every resolution step lands in exactly one per-query histogram
   observation: a negotiation nests solver calls (remote sub-queries enter
   fresh solves from inside an outer solve), and the outer query must not
   re-count the inner queries' steps.  Pins the steps accounting that the
   global-counter-delta scheme used to get wrong (off by the nested
   solves' steps). *)
let test_sld_steps_histogram_consistent () =
  Obs.reset_metrics ();
  let s = Core.Scenario.scenario1 () in
  let session = s.Core.Scenario.s1_session in
  let r =
    Core.Negotiation.request_str session ~requester:"Alice" ~target:"E-Learn"
      {|discountEnroll(spanish101, "Alice")|}
  in
  Alcotest.(check bool) "negotiation granted" true
    (Core.Negotiation.succeeded r);
  let snap = Obs.snapshot () in
  let steps = Registry.counter_value snap "sld.steps" in
  Alcotest.(check bool) "some steps recorded" true (steps > 0);
  match Registry.histogram_snapshot snap "sld.steps_per_query" with
  | None -> Alcotest.fail "sld.steps_per_query histogram missing"
  | Some hs ->
      Alcotest.(check int) "one observation per query"
        (Registry.counter_value snap "sld.queries")
        hs.Metric.hs_count;
      Alcotest.(check int) "histogram sum equals the step counter" steps
        (int_of_float hs.Metric.hs_sum)

(* The tentpole acceptance check: one queued scenario-1 negotiation with
   tracing on yields a single trace whose spans cover several peers, with
   every wire hop's receiver chaining back to the originating
   negotiation root through propagated contexts. *)
let test_cross_peer_trace () =
  Obs.reset_metrics ();
  let s = Core.Scenario.scenario1 ~key_bits:288 () in
  let session = s.Core.Scenario.s1_session in
  let clock = Net.Network.clock session.Core.Session.network in
  let tracer = Tracer.create ~now:(fun () -> Net.Clock.now clock) () in
  Obs.set_tracer tracer;
  Fun.protect ~finally:Obs.disable_tracing (fun () ->
      let report =
        Core.Reactor.negotiate session ~requester:"Alice" ~target:"E-Learn"
          (Core.Scenario.scenario1_goal ())
      in
      Alcotest.(check bool) "granted" true (Core.Negotiation.succeeded report);
      let spans = Tracer.spans tracer in
      let traced = List.filter (fun (sp : Span.t) -> sp.Span.trace <> 0) spans in
      Alcotest.(check bool) "traced spans recorded" true
        (List.length traced > 0);
      Alcotest.(check int) "every span joins the one trace"
        (List.length spans) (List.length traced);
      Alcotest.(check int) "a single trace id" 1
        (List.length
           (List.sort_uniq Int.compare
              (List.map (fun (sp : Span.t) -> sp.Span.trace) traced)));
      let attr_peers =
        List.sort_uniq compare
          (List.filter_map
             (fun (sp : Span.t) ->
               match List.assoc_opt "peer" (Span.attrs sp) with
               | Some (Json.Str p) -> Some p
               | _ -> None)
             traced)
      in
      Alcotest.(check bool)
        (Printf.sprintf "trace covers >= 2 peers (got %s)"
           (String.concat ", " attr_peers))
        true
        (List.length attr_peers >= 2);
      let wires =
        List.filter (fun (sp : Span.t) -> sp.Span.name = "net.wire") traced
      in
      Alcotest.(check bool) "wire transits recorded" true
        (List.length wires > 0);
      (* Cross-wire causality: every delivery span climbs parent links
         back to the negotiation root. *)
      let by_id = Hashtbl.create 64 in
      List.iter (fun (sp : Span.t) -> Hashtbl.replace by_id sp.Span.id sp) traced;
      let rec root_of (sp : Span.t) =
        match sp.Span.parent with
        | None -> sp
        | Some p -> (
            match Hashtbl.find_opt by_id p with
            | Some parent -> root_of parent
            | None -> sp)
      in
      List.iter
        (fun (sp : Span.t) ->
          if
            String.length sp.Span.name >= 5
            && String.sub sp.Span.name 0 5 = "recv."
          then
            Alcotest.(check string)
              (Printf.sprintf "%s (span %d) chains to the root" sp.Span.name
                 sp.Span.id)
              "negotiation"
              (root_of sp).Span.name)
        traced;
      (* And the timeline reconstruction agrees. *)
      match Timeline.build spans with
      | [ tl ] ->
          Alcotest.(check string) "timeline rooted at the negotiation"
            "negotiation"
            (match tl.Timeline.tl_root with
            | Some sp -> sp.Span.name
            | None -> "(none)");
          Alcotest.(check bool) "several peer lanes" true
            (List.length tl.Timeline.tl_lanes >= 2);
          Alcotest.(check bool) "critical path crosses the wire" true
            (List.exists
               (fun (sp : Span.t) -> sp.Span.name = "net.wire")
               tl.Timeline.tl_critical)
      | tls -> Alcotest.failf "expected 1 timeline, got %d" (List.length tls))

(* Tracing off is the default and must stay free: no spans, no context. *)
let test_tracing_off_records_nothing () =
  Obs.reset_metrics ();
  Obs.disable_tracing ();
  let s = Core.Scenario.scenario1 ~key_bits:288 () in
  let report =
    Core.Reactor.negotiate s.Core.Scenario.s1_session ~requester:"Alice"
      ~target:"E-Learn"
      (Core.Scenario.scenario1_goal ())
  in
  Alcotest.(check bool) "granted" true (Core.Negotiation.succeeded report);
  Alcotest.(check int) "no spans recorded" 0 (List.length (Obs.spans ()))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting and ordering" `Quick test_span_nesting;
          Alcotest.test_case "clock, events, attrs" `Quick
            test_span_clock_and_events;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safety;
          Alcotest.test_case "noop tracer" `Quick test_noop_tracer;
        ] );
      ( "trace-context",
        [
          Alcotest.test_case "header round-trip" `Quick
            test_trace_context_roundtrip;
          Alcotest.test_case "child re-parents" `Quick test_trace_context_child;
          Alcotest.test_case "garbage headers rejected" `Quick
            test_trace_context_garbage;
          Alcotest.test_case "mint and cross-trace join" `Quick
            test_tracer_mint_and_join;
          Alcotest.test_case "current context" `Quick
            test_tracer_current_context;
          Alcotest.test_case "unsampled context suppressed" `Quick
            test_tracer_unsampled_suppressed;
          Alcotest.test_case "retrospective record" `Quick
            test_tracer_record_retrospective;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "histogram percentiles" `Quick
            test_histogram_percentiles;
          Alcotest.test_case "histogram min/max" `Quick test_histogram_min_max;
          Alcotest.test_case "overflow percentile reports max" `Quick
            test_percentile_overflow_reports_max;
          Alcotest.test_case "min/max survive merge" `Quick
            test_min_max_survive_merge;
          Alcotest.test_case "registry merge" `Quick test_registry_merge;
          Alcotest.test_case "reset keeps cells" `Quick
            test_registry_reset_keeps_cells;
        ] );
      ( "export",
        [
          Alcotest.test_case "metrics JSON round-trip" `Quick
            test_metrics_json_roundtrip;
          Alcotest.test_case "min/max in metrics JSON" `Quick
            test_metrics_json_minmax;
          Alcotest.test_case "legacy snapshot without min/max" `Quick
            test_metrics_json_legacy_no_minmax;
          Alcotest.test_case "spans JSONL round-trip" `Quick
            test_spans_jsonl_roundtrip;
          Alcotest.test_case "span tree rendering" `Quick
            test_span_tree_render;
          Alcotest.test_case "chrome trace_event export" `Quick
            test_chrome_export;
          Alcotest.test_case "causal JSONL export" `Quick test_causal_export;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "build, lanes, critical path" `Quick
            test_timeline_build;
          Alcotest.test_case "anomaly flags" `Quick test_timeline_anomalies;
          Alcotest.test_case "restart storm" `Quick
            test_timeline_restart_storm;
        ] );
      ( "diff",
        [
          Alcotest.test_case "identical snapshots pass" `Quick
            test_diff_identical_passes;
          Alcotest.test_case "regressions fail" `Quick
            test_diff_regression_fails;
          Alcotest.test_case "timing tolerance is wide" `Quick
            test_diff_timing_tolerance;
          Alcotest.test_case "missing vs extra metrics" `Quick
            test_diff_missing_and_extra;
          Alcotest.test_case "histogram facets" `Quick
            test_diff_histogram_facets;
          Alcotest.test_case "JSON verdict" `Quick test_diff_report_json;
        ] );
      ( "integration",
        [
          Alcotest.test_case "scenario run is instrumented" `Quick
            test_scenario_instrumentation;
          Alcotest.test_case "sld step counter matches histogram" `Quick
            test_sld_steps_histogram_consistent;
          Alcotest.test_case "cross-peer causal trace" `Quick
            test_cross_peer_trace;
          Alcotest.test_case "tracing off records nothing" `Quick
            test_tracing_off_records_nothing;
        ] );
    ]

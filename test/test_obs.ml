(* Tests for the observability layer: spans, metrics, exporters, and the
   engine instrumentation feeding them during a real scenario run. *)

open Peertrust_obs
module Core = Peertrust
module Net = Peertrust_net

(* ------------------------------------------------------------------ *)
(* Spans and tracer *)

let span_names spans = List.map (fun (s : Span.t) -> s.Span.name) spans

let test_span_nesting () =
  let t = Tracer.create () in
  let result =
    Tracer.with_span t "outer" (fun () ->
        Tracer.with_span t "inner1" (fun () -> ());
        Tracer.with_span t "inner2" (fun () -> 42))
  in
  Alcotest.(check int) "result passes through" 42 result;
  let spans = Tracer.spans t in
  Alcotest.(check (list string))
    "start order" [ "outer"; "inner1"; "inner2" ] (span_names spans);
  let find name = List.find (fun (s : Span.t) -> s.Span.name = name) spans in
  let outer = find "outer" in
  Alcotest.(check (option int)) "outer is a root" None outer.Span.parent;
  Alcotest.(check (option int))
    "inner1 child of outer" (Some outer.Span.id) (find "inner1").Span.parent;
  Alcotest.(check (option int))
    "inner2 child of outer (sibling of inner1)" (Some outer.Span.id)
    (find "inner2").Span.parent;
  List.iter
    (fun (s : Span.t) ->
      Alcotest.(check bool)
        (s.Span.name ^ " finished") true
        (s.Span.end_ticks <> None))
    spans

let test_span_clock_and_events () =
  let ticks = ref 0 in
  let t = Tracer.create ~now:(fun () -> !ticks) () in
  Tracer.with_span t "work" (fun () ->
      ticks := 3;
      Tracer.event t "milestone";
      Tracer.set_attr t "k" (Json.Str "v");
      ticks := 7);
  match Tracer.spans t with
  | [ s ] ->
      Alcotest.(check int) "start ticks" 0 s.Span.start_ticks;
      Alcotest.(check (option int)) "end ticks" (Some 7) s.Span.end_ticks;
      Alcotest.(check int) "duration" 7 (Span.duration s);
      (match Span.events s with
      | [ e ] ->
          Alcotest.(check int) "event tick" 3 e.Span.at;
          Alcotest.(check string) "event message" "milestone" e.Span.message
      | es -> Alcotest.failf "expected 1 event, got %d" (List.length es));
      Alcotest.(check bool)
        "attr recorded" true
        (List.mem_assoc "k" (Span.attrs s))
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

let test_span_exception_safety () =
  let t = Tracer.create () in
  (try Tracer.with_span t "boom" (fun () -> failwith "expected") with
  | Failure _ -> ());
  match Tracer.finished t with
  | [ s ] -> Alcotest.(check string) "span closed" "boom" s.Span.name
  | _ -> Alcotest.fail "span not finished on exceptional exit"

let test_noop_tracer () =
  Alcotest.(check bool) "noop disabled" false (Tracer.enabled Tracer.noop);
  let r = Tracer.with_span Tracer.noop "ignored" (fun () -> 7) in
  Alcotest.(check int) "thunk still runs" 7 r;
  Alcotest.(check int) "nothing recorded" 0
    (List.length (Tracer.spans Tracer.noop))

(* ------------------------------------------------------------------ *)
(* Histograms *)

let test_histogram_buckets () =
  let h = Metric.histogram ~buckets:[| 1.; 10.; 100. |] "h" in
  List.iter (Metric.observe_int h) [ 0; 1; 2; 10; 50; 1000 ];
  Alcotest.(check (array int)) "bucket counts" [| 2; 2; 1; 1 |] h.Metric.counts;
  Alcotest.(check int) "count" 6 h.Metric.count;
  let hs = Metric.snapshot_histogram h in
  Alcotest.(check (float 1e-9)) "sum" 1063. hs.Metric.hs_sum;
  Alcotest.(check (float 1e-9))
    "mean" (1063. /. 6.) (Metric.mean hs)

let test_histogram_percentiles () =
  let h = Metric.histogram ~buckets:[| 1.; 2.; 4.; 8. |] "p" in
  (* 10 samples: four 1s, three 2s, two 4s, one 8. *)
  List.iter (Metric.observe_int h) [ 1; 1; 1; 1; 2; 2; 2; 4; 4; 8 ];
  let hs = Metric.snapshot_histogram h in
  Alcotest.(check (float 1e-9)) "p25 in first bucket" 1. (Metric.percentile hs 0.25);
  Alcotest.(check (float 1e-9)) "p50 in second bucket" 2. (Metric.percentile hs 0.5);
  Alcotest.(check (float 1e-9)) "p90 in third bucket" 4. (Metric.percentile hs 0.9);
  Alcotest.(check (float 1e-9)) "p100" 8. (Metric.percentile hs 1.);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Metric.percentile: q outside [0,1]") (fun () ->
      ignore (Metric.percentile hs 1.5))

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_registry_merge () =
  let make c1 hsamples gauge =
    let r = Registry.create () in
    Metric.add (Registry.counter r "c") c1;
    let h = Registry.histogram ~buckets:[| 1.; 2. |] r "h" in
    List.iter (Metric.observe_int h) hsamples;
    Metric.set (Registry.gauge r "g") gauge;
    Registry.snapshot r
  in
  let a = make 3 [ 1; 2 ] 1.0 in
  let b = make 4 [ 2; 5 ] 2.0 in
  let m = Registry.merge a b in
  Alcotest.(check int) "counters add" 7 (Registry.counter_value m "c");
  Alcotest.(check (list (pair string (float 1e-9))))
    "right gauge wins" [ ("g", 2.0) ] m.Registry.sn_gauges;
  (match Registry.histogram_snapshot m "h" with
  | Some hs ->
      Alcotest.(check (array int)) "histogram buckets add" [| 1; 2; 1 |]
        hs.Metric.hs_counts;
      Alcotest.(check int) "histogram count adds" 4 hs.Metric.hs_count
  | None -> Alcotest.fail "merged histogram missing");
  (* Merging with the empty snapshot is the identity. *)
  let id = Registry.merge a Registry.empty_snapshot in
  Alcotest.(check int) "identity merge" 3 (Registry.counter_value id "c")

let test_registry_reset_keeps_cells () =
  let r = Registry.create () in
  let c = Registry.counter r "c" in
  Metric.incr c;
  Registry.reset r;
  Alcotest.(check int) "zeroed" 0 (Metric.value c);
  Metric.incr c;
  Alcotest.(check int) "cell still registered" 1
    (Registry.counter_value (Registry.snapshot r) "c")

(* ------------------------------------------------------------------ *)
(* Exporters *)

let test_metrics_json_roundtrip () =
  let r = Registry.create () in
  Metric.add (Registry.counter r "queries") 12;
  Metric.set (Registry.gauge r "load") 0.5;
  let h = Registry.histogram r "steps" in
  List.iter (Metric.observe_int h) [ 1; 3; 70000 ];
  let snap = Registry.snapshot r in
  let text = Export.metrics_to_string ~label:"test" snap in
  (* The schema tag is embedded verbatim. *)
  (match Json.of_string text with
  | Ok json ->
      Alcotest.(check (option string))
        "schema tag" (Some Registry.schema_version)
        (Option.bind (Json.member "schema" json) Json.to_str)
  | Error e -> Alcotest.failf "export not valid JSON: %s" e);
  match Export.metrics_of_string text with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok snap' ->
      Alcotest.(check int) "counter survives" 12
        (Registry.counter_value snap' "queries");
      Alcotest.(check (list (pair string (float 1e-9))))
        "gauge survives" snap.Registry.sn_gauges snap'.Registry.sn_gauges;
      (match Registry.histogram_snapshot snap' "steps" with
      | Some hs ->
          let orig = Metric.snapshot_histogram h in
          Alcotest.(check (array int)) "buckets survive" orig.Metric.hs_counts
            hs.Metric.hs_counts;
          Alcotest.(check int) "count survives" 3 hs.Metric.hs_count
      | None -> Alcotest.fail "histogram lost in round-trip")

let test_spans_jsonl_roundtrip () =
  let t = Tracer.create () in
  Tracer.with_span t "negotiation" (fun () ->
      Tracer.with_span t
        ~attrs:[ ("goal", Json.Str {|p("x")|}); ("depth", Json.Int 3) ]
        "query"
        (fun () -> Tracer.event t "hit"));
  let spans = Tracer.spans t in
  let text = Export.spans_to_jsonl spans in
  Alcotest.(check int) "one line per span" (List.length spans)
    (List.length
       (List.filter
          (fun l -> String.trim l <> "")
          (String.split_on_char '\n' text)));
  match Export.spans_of_jsonl text with
  | Error e -> Alcotest.failf "JSONL parse failed: %s" e
  | Ok spans' ->
      Alcotest.(check (list string))
        "names survive" (span_names spans) (span_names spans');
      let q = List.nth spans' 1 in
      Alcotest.(check (option int))
        "parent link survives"
        (Some (List.nth spans 0).Span.id)
        q.Span.parent;
      Alcotest.(check bool) "attrs survive" true
        (List.mem_assoc "goal" (Span.attrs q));
      Alcotest.(check int) "events survive" 1 (List.length (Span.events q))

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_span_tree_render () =
  let t = Tracer.create () in
  Tracer.with_span t "root" (fun () ->
      Tracer.with_span t "child" (fun () -> ()));
  let tree = Export.span_tree (Tracer.spans t) in
  Alcotest.(check bool) "root present" true (contains ~sub:"root" tree);
  Alcotest.(check bool) "child indented under root" true
    (contains ~sub:"  child" tree)

(* ------------------------------------------------------------------ *)
(* Integration: a scenario run feeds the ambient registry and tracer *)

let test_scenario_instrumentation () =
  Obs.reset_metrics ();
  let s = Core.Scenario.scenario1 () in
  let session = s.Core.Scenario.s1_session in
  let clock = Net.Network.clock session.Core.Session.network in
  Obs.set_tracer (Tracer.create ~now:(fun () -> Net.Clock.now clock) ());
  Fun.protect ~finally:Obs.disable_tracing (fun () ->
      let r =
        Core.Negotiation.request_str session ~requester:"Alice"
          ~target:"E-Learn" {|discountEnroll(spanish101, "Alice")|}
      in
      Alcotest.(check bool) "negotiation granted" true
        (Core.Negotiation.succeeded r);
      let snap = Obs.snapshot () in
      let nonzero name =
        Alcotest.(check bool)
          (name ^ " counted") true
          (Registry.counter_value snap name > 0)
      in
      List.iter nonzero
        [
          "engine.queries"; "engine.answers"; "net.messages";
          "net.messages.query"; "sld.queries"; "sld.steps";
          "negotiation.count"; "negotiation.granted";
        ];
      (match Registry.histogram_snapshot snap "negotiation.messages" with
      | Some hs -> Alcotest.(check int) "one negotiation observed" 1
            hs.Metric.hs_count
      | None -> Alcotest.fail "negotiation.messages histogram missing");
      (* The span tree nests negotiation > query > resolution. *)
      let spans = Obs.spans () in
      let find name =
        List.find_opt (fun (sp : Span.t) -> sp.Span.name = name) spans
      in
      let get name =
        match find name with
        | Some sp -> sp
        | None -> Alcotest.failf "missing %S span" name
      in
      let nego = get "negotiation" in
      let query = get "query" in
      let sld = get "sld.solve" in
      Alcotest.(check (option int)) "negotiation is a root" None
        nego.Span.parent;
      Alcotest.(check (option string))
        "query under negotiation (via net.send)"
        (Some "negotiation")
        (let rec root_of (sp : Span.t) =
           match sp.Span.parent with
           | None -> Some sp.Span.name
           | Some pid -> (
               match
                 List.find_opt (fun (p : Span.t) -> p.Span.id = pid) spans
               with
               | Some p -> root_of p
               | None -> None)
         in
         root_of query);
      Alcotest.(check bool) "sld.solve nested below query" true
        (sld.Span.id > query.Span.id && sld.Span.parent <> None))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting and ordering" `Quick test_span_nesting;
          Alcotest.test_case "clock, events, attrs" `Quick
            test_span_clock_and_events;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safety;
          Alcotest.test_case "noop tracer" `Quick test_noop_tracer;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "histogram percentiles" `Quick
            test_histogram_percentiles;
          Alcotest.test_case "registry merge" `Quick test_registry_merge;
          Alcotest.test_case "reset keeps cells" `Quick
            test_registry_reset_keeps_cells;
        ] );
      ( "export",
        [
          Alcotest.test_case "metrics JSON round-trip" `Quick
            test_metrics_json_roundtrip;
          Alcotest.test_case "spans JSONL round-trip" `Quick
            test_spans_jsonl_roundtrip;
          Alcotest.test_case "span tree rendering" `Quick
            test_span_tree_render;
        ] );
      ( "integration",
        [
          Alcotest.test_case "scenario run is instrumented" `Quick
            test_scenario_instrumentation;
        ] );
    ]

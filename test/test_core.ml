(* Tests for the PeerTrust core: release policies, peers, the distributed
   engine, negotiations (both paper scenarios and failure variants),
   strategies, delegation, chain discovery and certified proofs. *)

open Peertrust
open Peertrust_dlp
module Crypto = Peertrust_crypto
module Net = Peertrust_net

let lit = Parser.parse_literal

let granted = function Negotiation.Granted _ -> true | Negotiation.Denied _ -> false

(* A prover over a bare KB, no remote dispatch — for Policy unit tests. *)
let local_prover kb : Policy.prover =
 fun ~requester goals ->
  match
    Sld.solve ~bindings:[ ("Requester", Term.str requester) ] ~self:"me" kb
      goals
  with
  | [] -> None
  | a :: _ -> Some a

(* ------------------------------------------------------------------ *)
(* Policy *)

let test_policy_default_private () =
  let prover = local_prover Kb.empty in
  (match Policy.releasable ~prover ~requester:"other" ~self:"me" None with
  | Policy.Denied _ -> ()
  | Policy.Granted -> Alcotest.fail "default must be private");
  match Policy.releasable ~prover ~requester:"me" ~self:"me" None with
  | Policy.Granted -> ()
  | Policy.Denied _ -> Alcotest.fail "self access must be granted"

let test_policy_public () =
  let prover = local_prover Kb.empty in
  match Policy.releasable ~prover ~requester:"anyone" ~self:"me" (Some []) with
  | Policy.Granted -> ()
  | Policy.Denied _ -> Alcotest.fail "true context is public"

let test_policy_guarded () =
  let kb = Kb.of_string {|friend("ann").|} in
  let prover = local_prover kb in
  let ctx = [ lit "friend(Requester)" ] in
  (match Policy.releasable ~prover ~requester:"ann" ~self:"me" (Some ctx) with
  | Policy.Granted -> ()
  | Policy.Denied _ -> Alcotest.fail "ann is a friend");
  match Policy.releasable ~prover ~requester:"bob" ~self:"me" (Some ctx) with
  | Policy.Denied _ -> ()
  | Policy.Granted -> Alcotest.fail "bob is not a friend"

let test_policy_credential_release () =
  let kb =
    Kb.of_string
      {|badge("me") @ "CA" signedBy ["CA"].
        badge(X) @ Y $ friend(Requester) <-{true} badge(X) @ Y.
        friend("ann").|}
  in
  let prover = local_prover kb in
  let cred = Parser.parse_rule {|badge("me") @ "CA" signedBy ["CA"].|} in
  (match
     Policy.credential_releasable ~prover ~kb ~requester:"ann" ~self:"me" cred
   with
  | Policy.Granted -> ()
  | Policy.Denied r -> Alcotest.failf "ann should get the badge: %s" r);
  match
    Policy.credential_releasable ~prover ~kb ~requester:"eve" ~self:"me" cred
  with
  | Policy.Denied _ -> ()
  | Policy.Granted -> Alcotest.fail "eve should not get the badge"

let test_policy_credential_no_release_rule () =
  let kb = Kb.of_string {|secret("me") @ "CA" signedBy ["CA"].|} in
  let prover = local_prover kb in
  let cred = Parser.parse_rule {|secret("me") @ "CA" signedBy ["CA"].|} in
  match
    Policy.credential_releasable ~prover ~kb ~requester:"ann" ~self:"me" cred
  with
  | Policy.Denied "no release rule covers credential" -> ()
  | Policy.Denied r -> Alcotest.failf "unexpected reason: %s" r
  | Policy.Granted -> Alcotest.fail "uncovered credential must stay private"

let test_policy_credential_self_true_fact () =
  (* A signed fact carrying `$ true` is releasable through itself. *)
  let kb = Kb.of_string {|member("me") @ "ELENA" $ true signedBy ["ELENA"].|} in
  let prover = local_prover kb in
  let cred =
    Parser.parse_rule {|member("me") @ "ELENA" $ true signedBy ["ELENA"].|}
  in
  match
    Policy.credential_releasable ~prover ~kb ~requester:"x" ~self:"me" cred
  with
  | Policy.Granted -> ()
  | Policy.Denied r -> Alcotest.failf "self-covering $ true failed: %s" r

(* ------------------------------------------------------------------ *)
(* Peer *)

let test_peer_cycle_detection () =
  let p = Peer.create "p" in
  let g = lit {|student("Alice") @ "UIUC"|} in
  Alcotest.(check bool) "first entry" true (Peer.enter p ~requester:"q" g);
  Alcotest.(check bool) "re-entry blocked" false (Peer.enter p ~requester:"q" g);
  Alcotest.(check bool) "different requester ok" true
    (Peer.enter p ~requester:"r" g);
  Peer.leave p ~requester:"q" g;
  Alcotest.(check bool) "after leave" true (Peer.enter p ~requester:"q" g)

let test_peer_goal_key_alpha_invariant () =
  Alcotest.(check string) "alpha-equivalent goals share a key"
    (Peer.goal_key (lit "p(X, Y) @ Z"))
    (Peer.goal_key (lit "p(A, B) @ C"))

let test_peer_cert_store () =
  let session = Session.create () in
  let p =
    Session.add_peer session ~program:{|badge("p") @ "CA" signedBy ["CA"].|} "p"
  in
  let rule = Parser.parse_rule {|badge("p") @ "CA" signedBy ["CA"].|} in
  match Peer.cert_for p rule with
  | Some cert ->
      Alcotest.(check bool) "cert verifies" true
        (Crypto.Cert.verify session.Session.keystore cert = Ok ());
      Alcotest.(check bool) "own cert has no origin" true
        (Peer.cert_origin p cert = None)
  | None -> Alcotest.fail "setup should issue certificates"

(* ------------------------------------------------------------------ *)
(* Engine basics *)

let two_peer_session ?(config = Session.default_config) owner_prog requester_prog =
  let session = Session.create ~config () in
  let _owner = Session.add_peer session ~program:owner_prog "owner" in
  let _req = Session.add_peer session ~program:requester_prog "req" in
  Engine.attach_all session;
  session

let test_engine_private_fact_denied () =
  let session = two_peer_session {|secret(42).|} "" in
  let r = Negotiation.request_str session ~requester:"req" ~target:"owner" "secret(X)" in
  Alcotest.(check bool) "denied" false (granted r.Negotiation.outcome);
  Alcotest.(check int) "one round trip" 2 r.Negotiation.messages

let test_engine_public_fact_granted () =
  let session = two_peer_session {|info(42) $ true.|} "" in
  let r = Negotiation.request_str session ~requester:"req" ~target:"owner" "info(X)" in
  match r.Negotiation.outcome with
  | Negotiation.Granted [ (l, None) ] ->
      Alcotest.(check string) "instance" "info(42)" (Literal.to_string l)
  | _ -> Alcotest.fail "expected one instance"

let test_engine_release_rule_gate () =
  let owner =
    {|resource("r") $ Requester = "req" <-{true} haveIt("r"). haveIt("r").|}
  in
  let session = two_peer_session owner "" in
  let ok =
    Negotiation.request_str session ~requester:"req" ~target:"owner"
      {|resource("r")|}
  in
  Alcotest.(check bool) "named requester granted" true
    (granted ok.Negotiation.outcome);
  let session2 = two_peer_session owner "" in
  let other = Session.add_peer session2 "mallory" in
  ignore other;
  Engine.attach_all session2;
  let no =
    Negotiation.request_str session2 ~requester:"mallory" ~target:"owner"
      {|resource("r")|}
  in
  Alcotest.(check bool) "other requester denied" false
    (granted no.Negotiation.outcome)

let test_engine_private_rule_usable_internally () =
  (* A private helper rule participates in the proof of a public head. *)
  let owner =
    {|visible(X) $ true <- helper(X).
      helper(X) <- base(X).
      base(7).|}
  in
  let session = two_peer_session owner "" in
  let r =
    Negotiation.request_str session ~requester:"req" ~target:"owner" "visible(X)"
  in
  Alcotest.(check bool) "granted through private helper" true
    (granted r.Negotiation.outcome);
  (* But the helper itself is not directly answerable. *)
  let r2 =
    Negotiation.request_str session ~requester:"req" ~target:"owner" "helper(X)"
  in
  Alcotest.(check bool) "helper denied" false (granted r2.Negotiation.outcome)

let test_engine_credential_source () =
  (* A signed credential answers a decorated goal when a release rule with
     an undecorated head covers it (the visaCard pattern). *)
  let owner =
    {|card("owner") signedBy ["VISA"].
      card(X) $ true <-{true} card(X).|}
  in
  let session = two_peer_session owner "" in
  let r =
    Negotiation.request_str session ~requester:"req" ~target:"owner"
      {|card(X) @ "VISA"|}
  in
  (match r.Negotiation.outcome with
  | Negotiation.Granted ((l, _) :: _) ->
      Alcotest.(check string) "instance carries authority"
        {|card("owner") @ "VISA"|} (Literal.to_string l)
  | _ -> Alcotest.fail "expected the credential answer");
  Alcotest.(check int) "credential disclosed" 1 r.Negotiation.disclosures

let test_engine_signed_rule_with_guard_body () =
  (* authorized("Bob", Price) <- signedBy["IBM"] Price < 2000 *)
  let owner =
    {|authorized("owner", Price) @ "IBM" <- signedBy ["IBM"] Price < 2000.
      authorized(X, P) @ Y $ true <-{true} authorized(X, P) @ Y.|}
  in
  let session = two_peer_session owner "" in
  let ok =
    Negotiation.request_str session ~requester:"req" ~target:"owner"
      {|authorized("owner", 1500) @ "IBM"|}
  in
  Alcotest.(check bool) "under limit granted" true (granted ok.Negotiation.outcome);
  let no =
    Negotiation.request_str session ~requester:"req" ~target:"owner"
      {|authorized("owner", 2500) @ "IBM"|}
  in
  Alcotest.(check bool) "over limit denied" false (granted no.Negotiation.outcome)

let test_engine_counter_query () =
  (* owner releases the resource only to peers that prove cred @ CA. *)
  let owner =
    {|resource("r") $ cred(Requester) @ "CA" <-{true} haveIt("r").
      haveIt("r").
      cred(X) @ "CA" <- cred(X) @ "CA" @ X.|}
  in
  let requester = {|cred("req") @ "CA" $ true signedBy ["CA"].|} in
  let session = two_peer_session owner requester in
  let r =
    Negotiation.request_str session ~requester:"req" ~target:"owner"
      {|resource("r")|}
  in
  Alcotest.(check bool) "granted after counter-query" true
    (granted r.Negotiation.outcome);
  Alcotest.(check bool) "counter-query happened" true (r.Negotiation.messages >= 4);
  Alcotest.(check int) "one credential disclosed" 1 r.Negotiation.disclosures

let test_engine_cycle_terminates () =
  (* Two mutually dependent release policies: no safe sequence exists; the
     negotiation must terminate with a denial rather than loop. *)
  let owner =
    {|a("o") $ b(Requester) @ "CA" <-{true} a("o").
      a("o") @ "CA" signedBy ["CA"].
      b(X) @ "CA" <- b(X) @ "CA" @ X.|}
  in
  let requester =
    {|b("req") $ a(Requester) @ "CA" <-{true} b("req").
      b("req") @ "CA" signedBy ["CA"].
      a(X) @ "CA" <- a(X) @ "CA" @ X.|}
  in
  let session = two_peer_session owner requester in
  let r =
    Negotiation.request_str session ~requester:"req" ~target:"owner" {|a("o")|}
  in
  Alcotest.(check bool) "denied, not diverging" false (granted r.Negotiation.outcome)

let test_engine_unreachable_peer () =
  let owner =
    {|resource("r") $ cred(Requester) @ "CA" @ Requester <-{true} haveIt("r").
      haveIt("r").|}
  in
  let session = two_peer_session owner "" in
  Net.Network.set_down session.Session.network "req" true;
  let report =
    Negotiation.measure session (fun () ->
        match Engine.query session ~requester:"req" ~target:"owner" (lit {|resource("r")|}) with
        | [] -> Negotiation.Denied "no"
        | i -> Negotiation.Granted i)
  in
  Alcotest.(check bool) "denied when requester unreachable for counter-query"
    false (granted report.Negotiation.outcome)

let test_engine_max_answers () =
  let config = { Session.default_config with Session.max_answers = 2 } in
  let owner = {|item(1) $ true. item(2) $ true. item(3) $ true.|} in
  let session = two_peer_session ~config owner "" in
  let r = Negotiation.request_str session ~requester:"req" ~target:"owner" "item(X)" in
  match r.Negotiation.outcome with
  | Negotiation.Granted instances ->
      Alcotest.(check int) "capped at two" 2 (List.length instances)
  | Negotiation.Denied _ -> Alcotest.fail "expected answers"

let test_engine_rejects_forged_certs () =
  let session = two_peer_session "" "" in
  let owner = Session.peer session "owner" in
  (* A certificate whose rule was swapped after signing. *)
  let genuine = Parser.parse_rule {|ok("x") @ "CA" signedBy ["CA"].|} in
  let forged_rule = Parser.parse_rule {|ok("evil") @ "CA" signedBy ["CA"].|} in
  match Crypto.Cert.issue session.Session.keystore genuine with
  | Error _ -> Alcotest.fail "issue failed"
  | Ok cert ->
      let forged = { cert with Crypto.Cert.rule = forged_rule } in
      Engine.learn session owner [ forged ];
      Alcotest.(check bool) "forged rule not learned" false
        (Kb.mem forged_rule owner.Peer.kb);
      Engine.learn session owner [ cert ];
      Alcotest.(check bool) "genuine rule learned" true
        (Kb.mem genuine owner.Peer.kb)

let test_engine_verification_ablation () =
  (* With verify_signatures off, even a forged certificate is accepted —
     the ablation knob of experiment E7. *)
  let config = { Session.default_config with Session.verify_signatures = false } in
  let session = Session.create ~config () in
  let owner = Session.add_peer session "owner" in
  let genuine = Parser.parse_rule {|ok("x") @ "CA" signedBy ["CA"].|} in
  let forged_rule = Parser.parse_rule {|ok("evil") @ "CA" signedBy ["CA"].|} in
  (match Crypto.Cert.issue session.Session.keystore genuine with
  | Error _ -> Alcotest.fail "issue failed"
  | Ok cert ->
      let forged = { cert with Crypto.Cert.rule = forged_rule } in
      Engine.learn session owner [ forged ];
      Alcotest.(check bool) "forged accepted without verification" true
        (Kb.mem forged_rule owner.Peer.kb))

let test_engine_instance_caching () =
  (* Second identical negotiation answers from cache with fewer messages. *)
  let owner =
    {|resource("r") $ cred(Requester) @ "CA" <-{true} haveIt("r").
      haveIt("r").
      cred(X) @ "CA" <- cred(X) @ "CA" @ X.|}
  in
  let requester = {|cred("req") @ "CA" $ true signedBy ["CA"].|} in
  let session = two_peer_session owner requester in
  let r1 =
    Negotiation.request_str session ~requester:"req" ~target:"owner" {|resource("r")|}
  in
  let r2 =
    Negotiation.request_str session ~requester:"req" ~target:"owner" {|resource("r")|}
  in
  Alcotest.(check bool) "both granted" true
    (granted r1.Negotiation.outcome && granted r2.Negotiation.outcome);
  Alcotest.(check bool) "cache cuts messages" true
    (r2.Negotiation.messages < r1.Negotiation.messages)

let test_engine_message_budget () =
  (* A tight message budget turns into a denial, not an exception. *)
  let config = Session.default_config in
  let session = Session.create ~config ~max_messages:3 () in
  ignore
    (Session.add_peer session
       ~program:
         {|resource("r") $ cred(Requester) @ "CA" <-{true} haveIt("r").
           haveIt("r").
           cred(X) @ "CA" <- cred(X) @ "CA" @ X.|}
       "owner");
  ignore
    (Session.add_peer session
       ~program:{|cred("req") @ "CA" $ true signedBy ["CA"].|}
       "req");
  Engine.attach_all session;
  let r =
    Negotiation.request_str session ~requester:"req" ~target:"owner"
      {|resource("r")|}
  in
  (match r.Negotiation.outcome with
  | Negotiation.Denied reason ->
      Alcotest.(check string) "reason" "message budget exhausted" reason
  | Negotiation.Granted _ -> Alcotest.fail "should hit the budget");
  Alcotest.(check bool) "stopped at the budget" true (r.Negotiation.messages <= 3)

let test_engine_max_hops () =
  (* A hop budget of zero blocks all remote evaluation. *)
  let config = { Session.default_config with Session.max_hops = 0 } in
  let session = Session.create ~config () in
  ignore (Session.add_peer session ~program:{|info(1) $ true.|} "owner");
  ignore (Session.add_peer session "req");
  Engine.attach_all session;
  let r = Negotiation.request_str session ~requester:"req" ~target:"owner" "info(X)" in
  Alcotest.(check bool) "no remote evaluation at zero hops" false
    (granted r.Negotiation.outcome)

(* ------------------------------------------------------------------ *)
(* Scenario 1 (§4.1) *)

let test_scenario1_success () =
  let s = Scenario.scenario1 () in
  let r =
    Negotiation.request_str s.Scenario.s1_session ~requester:s.Scenario.s1_alice
      ~target:s.Scenario.s1_elearn {|discountEnroll(spanish101, "Alice")|}
  in
  Alcotest.(check bool) "granted" true (granted r.Negotiation.outcome);
  Alcotest.(check int) "six messages" 6 r.Negotiation.messages;
  Alcotest.(check int) "three credentials disclosed" 3 r.Negotiation.disclosures

let test_scenario1_transcript_shape () =
  let s = Scenario.scenario1 () in
  let r =
    Negotiation.request_str s.Scenario.s1_session ~requester:"Alice"
      ~target:"E-Learn" {|discountEnroll(spanish101, "Alice")|}
  in
  let summaries =
    List.map (fun e -> (e.Net.Network.from, e.Net.Network.target)) r.Negotiation.transcript
  in
  (* Alice asks E-Learn; E-Learn counter-asks for the student ID; Alice
     counter-asks for BBB membership; answers flow back in reverse. *)
  Alcotest.(check (list (pair string string))) "message flow"
    [
      ("Alice", "E-Learn");
      ("E-Learn", "Alice");
      ("Alice", "E-Learn");
      ("E-Learn", "Alice");
      ("Alice", "E-Learn");
      ("E-Learn", "Alice");
    ]
    summaries

let test_scenario1_elearn_cannot_query_uiuc () =
  let s = Scenario.scenario1 () in
  let r =
    Negotiation.request_str s.Scenario.s1_session ~requester:"E-Learn"
      ~target:"UIUC" {|student("Alice")|}
  in
  Alcotest.(check bool) "UIUC refuses E-Learn" false (granted r.Negotiation.outcome)

let test_scenario1_impostor_denied () =
  (* Mallory has no student credential: the discount is refused. *)
  let s = Scenario.scenario1 () in
  let session = s.Scenario.s1_session in
  ignore (Session.add_peer session "Mallory");
  Engine.attach_all session;
  let r =
    Negotiation.request_str session ~requester:"Mallory" ~target:"E-Learn"
      {|discountEnroll(spanish101, "Mallory")|}
  in
  Alcotest.(check bool) "denied" false (granted r.Negotiation.outcome)

let test_scenario1_wrong_party_denied () =
  (* Alice asking for a discount in Mallory's name fails the
     Requester = Party release check. *)
  let s = Scenario.scenario1 () in
  let r =
    Negotiation.request_str s.Scenario.s1_session ~requester:"Alice"
      ~target:"E-Learn" {|discountEnroll(spanish101, "Mallory")|}
  in
  Alcotest.(check bool) "denied" false (granted r.Negotiation.outcome)

let test_scenario1_no_badge_no_deal () =
  (* An E-Learn that cannot prove BBB membership never sees the student
     credential, so the negotiation fails.  Same world as scenario 1,
     minus E-Learn's BBB credential. *)
  let session = Session.create () in
  let elearn_program =
    {|
      discountEnroll(Course, Party) $ Requester = Party <-
        discountEnroll(Course, Party).
      discountEnroll(Course, Party) <- eligibleForDiscount(Party, Course).
      eligibleForDiscount(X, Course) <- course(Course), preferred(X) @ "ELENA".
      preferred(X) @ "ELENA" <- signedBy ["ELENA"] student(X) @ "UIUC".
      student(X) @ University <- student(X) @ University @ X.
      course(spanish101).
    |}
  in
  let alice_program =
    {|
      student("Alice") @ "UIUC Registrar" signedBy ["UIUC Registrar"].
      student(X) @ "UIUC" <-{true} signedBy ["UIUC"] student(X) @ "UIUC Registrar".
      student(X) @ Y $ member(Requester) @ "BBB" @ Requester <-{true}
        student(X) @ Y.
    |}
  in
  ignore (Session.add_peer session ~program:elearn_program "E-Learn");
  ignore (Session.add_peer session ~program:alice_program "Alice");
  Engine.attach_all session;
  let r =
    Negotiation.request_str session ~requester:"Alice" ~target:"E-Learn"
      {|discountEnroll(spanish101, "Alice")|}
  in
  Alcotest.(check bool) "denied without BBB proof" false
    (granted r.Negotiation.outcome)

(* ------------------------------------------------------------------ *)
(* Scenario 2 (§4.2) *)

let test_scenario2_free_course () =
  let s = Scenario.scenario2 () in
  let r =
    Negotiation.request_str s.Scenario.s2_session ~requester:"Bob"
      ~target:"E-Learn" {|enroll(cs101, "Bob", "IBM", Email, 0)|}
  in
  match r.Negotiation.outcome with
  | Negotiation.Granted ((l, _) :: _) ->
      Alcotest.(check string) "email flowed back into the enrolment"
        {|enroll(cs101, "Bob", "IBM", "bob@ibm.com", 0)|}
        (Literal.to_string l)
  | _ -> Alcotest.fail "free enrolment should be granted"

let test_scenario2_paid_course () =
  let s = Scenario.scenario2 () in
  let r =
    Negotiation.request_str s.Scenario.s2_session ~requester:"Bob"
      ~target:"E-Learn" {|enroll(cs411, "Bob", "IBM", Email, Price)|}
  in
  Alcotest.(check bool) "granted" true (granted r.Negotiation.outcome)

let test_scenario2_over_authorization_denied () =
  (* cs500 costs 3000 > Bob's 2000 authorization limit. *)
  let s = Scenario.scenario2 () in
  let r =
    Negotiation.request_str s.Scenario.s2_session ~requester:"Bob"
      ~target:"E-Learn" {|enroll(cs500, "Bob", "IBM", Email, Price)|}
  in
  Alcotest.(check bool) "denied" false (granted r.Negotiation.outcome)

let test_scenario2_credit_limit () =
  (* With a 500 VISA limit, even the 1000 course is refused at approval. *)
  let s = Scenario.scenario2 ~visa_limit:500 () in
  let r =
    Negotiation.request_str s.Scenario.s2_session ~requester:"Bob"
      ~target:"E-Learn" {|enroll(cs411, "Bob", "IBM", Email, Price)|}
  in
  Alcotest.(check bool) "denied by VISA approval" false
    (granted r.Negotiation.outcome)

let test_scenario2_visa_down () =
  let s = Scenario.scenario2 () in
  Net.Network.set_down s.Scenario.s2_session.Session.network "VISA" true;
  let paid =
    Negotiation.request_str s.Scenario.s2_session ~requester:"Bob"
      ~target:"E-Learn" {|enroll(cs411, "Bob", "IBM", Email, Price)|}
  in
  Alcotest.(check bool) "paid denied without VISA" false
    (granted paid.Negotiation.outcome);
  let free =
    Negotiation.request_str s.Scenario.s2_session ~requester:"Bob"
      ~target:"E-Learn" {|enroll(cs101, "Bob", "IBM", Email, 0)|}
  in
  Alcotest.(check bool) "free still granted" true (granted free.Negotiation.outcome)

let test_scenario2_policy_protection () =
  (* freebieEligible is private business information: asking for it
     directly is denied, and its text never appears in any message. *)
  let s = Scenario.scenario2 () in
  let r =
    Negotiation.request_str s.Scenario.s2_session ~requester:"Bob"
      ~target:"E-Learn" {|freebieEligible(cs101, "Bob", "IBM", Email)|}
  in
  Alcotest.(check bool) "policy is protected" false (granted r.Negotiation.outcome);
  let free =
    Negotiation.request_str s.Scenario.s2_session ~requester:"Bob"
      ~target:"E-Learn" {|enroll(cs101, "Bob", "IBM", Email, 0)|}
  in
  Alcotest.(check bool) "but the service works" true
    (granted free.Negotiation.outcome);
  let contains_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m > 0 && go 0
  in
  List.iter
    (fun e ->
      Alcotest.(check bool) "no freebieEligible text on the wire" false
        (contains_sub e.Net.Network.summary "freebieEligible"))
    free.Negotiation.transcript

let test_scenario2_stranger_cannot_get_bobs_card () =
  (* A peer that is neither a VISA merchant nor an ELENA member cannot see
     Bob's card. *)
  let s = Scenario.scenario2 () in
  ignore (Session.add_peer s.Scenario.s2_session "Eve");
  Engine.attach_all s.Scenario.s2_session;
  let r =
    Negotiation.request_str s.Scenario.s2_session ~requester:"Eve"
      ~target:"Bob" {|visaCard("IBM") @ "VISA"|}
  in
  Alcotest.(check bool) "card stays private" false (granted r.Negotiation.outcome)

let test_scenario2_merchant_gets_bobs_card () =
  let s = Scenario.scenario2 () in
  let r =
    Negotiation.request_str s.Scenario.s2_session ~requester:"E-Learn"
      ~target:"Bob" {|visaCard("IBM") @ "VISA"|}
  in
  Alcotest.(check bool) "policy27 satisfied by E-Learn" true
    (granted r.Negotiation.outcome)

(* ------------------------------------------------------------------ *)
(* Strategies *)

let test_strategies_all_succeed_on_chain () =
  List.iter
    (fun strategy ->
      let w = Scenario.policy_chain ~depth:3 () in
      let r =
        Strategy.negotiate w.Scenario.cw_session ~strategy
          ~requester:w.Scenario.cw_requester ~target:w.Scenario.cw_owner
          w.Scenario.cw_goal
      in
      Alcotest.(check bool)
        (Strategy.to_string strategy ^ " succeeds")
        true (granted r.Negotiation.outcome))
    Strategy.all

let test_strategies_all_fail_when_impossible () =
  (* Break the chain: the requester lacks cred1 entirely. *)
  List.iter
    (fun strategy ->
      let session = Session.create () in
      let owner =
        {|resource(X) $ cred1(Requester) @ "CA" <-{true} haveResource(X).
          haveResource("r1").
          cred1(X) @ "CA" <- cred1(X) @ "CA" @ X.|}
      in
      ignore (Session.add_peer session ~program:owner "bob");
      ignore (Session.add_peer session "alice");
      Engine.attach_all session;
      let r =
        Strategy.negotiate session ~strategy ~requester:"alice" ~target:"bob"
          (lit {|resource("r1")|})
      in
      Alcotest.(check bool)
        (Strategy.to_string strategy ^ " fails")
        false
        (granted r.Negotiation.outcome))
    Strategy.all

let test_eager_overdiscloses () =
  let run strategy =
    let w = Scenario.policy_chain ~depth:2 ~extra_creds:3 () in
    Strategy.negotiate w.Scenario.cw_session ~strategy
      ~requester:w.Scenario.cw_requester ~target:w.Scenario.cw_owner
      w.Scenario.cw_goal
  in
  let eager = run Strategy.Eager in
  let relevant = run Strategy.Relevant in
  Alcotest.(check bool) "both succeed" true
    (granted eager.Negotiation.outcome && granted relevant.Negotiation.outcome);
  Alcotest.(check bool) "eager disclosed strictly more" true
    (eager.Negotiation.disclosures > relevant.Negotiation.disclosures)

let test_eager_fewer_query_messages_deep_chain () =
  (* On deep chains the relevant strategy pays a query per hop in each
     direction; eager pays disclosure rounds instead. *)
  let run strategy =
    let w = Scenario.policy_chain ~depth:6 () in
    Strategy.negotiate w.Scenario.cw_session ~strategy
      ~requester:w.Scenario.cw_requester ~target:w.Scenario.cw_owner
      w.Scenario.cw_goal
  in
  let eager = run Strategy.Eager in
  let relevant = run Strategy.Relevant in
  Alcotest.(check bool) "both succeed" true
    (granted eager.Negotiation.outcome && granted relevant.Negotiation.outcome);
  Alcotest.(check bool) "eager uses at least as many disclosures" true
    (eager.Negotiation.disclosures >= relevant.Negotiation.disclosures)

let test_push_relevant_fewer_messages () =
  let run strategy =
    let w = Scenario.fanout ~width:4 () in
    Strategy.negotiate w.Scenario.cw_session ~strategy
      ~requester:w.Scenario.cw_requester ~target:w.Scenario.cw_owner
      w.Scenario.cw_goal
  in
  let push = run Strategy.Push_relevant in
  let relevant = run Strategy.Relevant in
  Alcotest.(check bool) "both succeed" true
    (granted push.Negotiation.outcome && granted relevant.Negotiation.outcome);
  Alcotest.(check bool) "push needs fewer messages" true
    (push.Negotiation.messages < relevant.Negotiation.messages)

(* ------------------------------------------------------------------ *)
(* Chain discovery *)

let test_chain_discovery_linear () =
  let session, root, _last =
    Chain.linear_world ~depth:4 ~pred:"member" ~subject:"sam" ()
  in
  ignore (Session.add_peer session "client");
  Engine.attach_all session;
  let result =
    Chain.discover session ~requester:"client" ~root (lit {|member("sam")|})
  in
  Alcotest.(check bool) "found" true result.Chain.found;
  (* depth delegation certificates + the final membership fact *)
  Alcotest.(check int) "whole chain collected" 5 (List.length result.Chain.chain)

let test_chain_discovery_broken () =
  let session, root, last =
    Chain.linear_world ~depth:3 ~pred:"member" ~subject:"sam" ()
  in
  ignore (Session.add_peer session "client");
  Engine.attach_all session;
  Net.Network.set_down session.Session.network last true;
  let result =
    Chain.discover session ~requester:"client" ~root (lit {|member("sam")|})
  in
  Alcotest.(check bool) "broken chain not found" false result.Chain.found

let test_chain_discovery_wrong_subject () =
  let session, root, _ =
    Chain.linear_world ~depth:2 ~pred:"member" ~subject:"sam" ()
  in
  ignore (Session.add_peer session "client");
  Engine.attach_all session;
  let result =
    Chain.discover session ~requester:"client" ~root (lit {|member("eve")|})
  in
  Alcotest.(check bool) "no chain for eve" false result.Chain.found

(* ------------------------------------------------------------------ *)
(* Delegation *)

let test_delegation_rule_shape () =
  let r =
    Delegation.delegation_rule ~issuer:"UIUC" ~delegate:"Registrar"
      ~pred:"student" ~arity:1 ()
  in
  Alcotest.(check string) "printed form"
    {|student(X1) @ "UIUC" <-{true} student(X1) @ "Registrar" signedBy ["UIUC"].|}
    (Rule.to_string r)

let test_delegation_grant_and_use () =
  let session = Session.create () in
  let holder = Session.add_peer session "holder" in
  let rule =
    Delegation.delegation_rule ~issuer:"Root" ~delegate:"Deputy" ~pred:"ok"
      ~arity:1 ()
  in
  let cert = Delegation.grant session ~holder rule in
  Alcotest.(check bool) "cert verifies" true
    (Crypto.Cert.verify session.Session.keystore cert = Ok ());
  Peer.add_rule holder
    (Parser.parse_rule {|ok("holder") @ "Deputy" signedBy ["Deputy"].|});
  Alcotest.(check bool) "delegation closes the chain" true
    (Sld.provable ~self:"holder" holder.Peer.kb
       (Parser.parse_query {|ok("holder") @ "Root"|}))

let test_delegation_unsigned_rejected () =
  let session = Session.create () in
  let holder = Session.add_peer session "holder" in
  Alcotest.check_raises "unsigned rule rejected"
    (Invalid_argument "Delegation.grant: rule is unsigned") (fun () ->
      ignore (Delegation.grant session ~holder (Parser.parse_rule "p(1).")))

let test_delegation_chain_extraction () =
  let session = Session.create () in
  let p = Session.add_peer session "p" in
  Peer.load_program p
    {|student(X) @ "UIUC" <- signedBy ["UIUC"] student(X) @ "Registrar".
      student("p") @ "Registrar" signedBy ["Registrar"].|};
  match Sld.solve ~self:"p" p.Peer.kb (Parser.parse_query {|student("p") @ "UIUC"|}) with
  | { Sld.proofs = [ trace ]; _ } :: _ ->
      let chain = Delegation.chain_of_trace ~pred:"student" trace in
      Alcotest.(check int) "two links" 2 (List.length chain);
      Alcotest.(check bool) "rooted at UIUC" true
        (Delegation.chain_rooted ~root:"UIUC" ~pred:"student" trace)
  | _ -> Alcotest.fail "proof expected"

(* ------------------------------------------------------------------ *)
(* Certified proofs *)

let proof_fixture () =
  let session = Session.create () in
  let p =
    Session.add_peer session
      ~program:
        {|eligible(X) <- student(X) @ "UIUC".
          student("p") @ "UIUC" signedBy ["UIUC"].|}
      "p"
  in
  let goal = lit {|eligible("p")|} in
  match Sld.solve ~self:"p" p.Peer.kb [ goal ] with
  | { Sld.proofs = [ trace ]; _ } :: _ ->
      (session, Proof.create session ~prover:"p" ~goal trace)
  | _ -> Alcotest.fail "local proof expected"

let test_proof_verify_ok () =
  let session, proof = proof_fixture () in
  match Proof.verify session proof with
  | Ok () -> ()
  | Error e -> Alcotest.failf "verification failed: %a" Proof.pp_error e

let test_proof_tampered_goal () =
  let session, proof = proof_fixture () in
  let tampered = { proof with Proof.goal = lit {|eligible("mallory")|} } in
  match Proof.verify session tampered with
  | Error Proof.Bad_package_signature -> ()
  | Ok () -> Alcotest.fail "tampered proof accepted"
  | Error e -> Alcotest.failf "unexpected error: %a" Proof.pp_error e

let test_proof_missing_cert () =
  let session, proof = proof_fixture () in
  (* Rebuild the package without certificates but with a fresh prover
     signature, so only the certificate check can fail. *)
  let stripped =
    let msg_proof = { proof with Proof.certs = [] } in
    let kp = Crypto.Keystore.keypair session.Session.keystore "p" in
    let payload_hack =
      (* Re-sign the stripped package through Proof.create's signing path:
         build a package manually. *)
      ignore kp;
      msg_proof
    in
    payload_hack
  in
  match Proof.verify session stripped with
  | Error (Proof.Missing_certificate _) | Error Proof.Bad_package_signature -> ()
  | Ok () -> Alcotest.fail "certificate-less proof accepted"
  | Error e -> Alcotest.failf "unexpected error: %a" Proof.pp_error e

let test_proof_unsound_step () =
  let session = Session.create () in
  ignore (Session.add_peer session "p");
  (* Hand-build a trace claiming q(1) follows from a rule deriving p(1). *)
  let bogus_rule = Parser.parse_rule "p(1) <- r(2)." in
  let sub = Trace.Apply (Parser.parse_rule "r(3).", []) in
  let trace = Trace.Apply (bogus_rule, [ sub ]) in
  let proof = Proof.create session ~prover:"p" ~goal:(lit "p(1)") trace in
  match Proof.verify session proof with
  | Error (Proof.Unsound_step _) -> ()
  | Ok () -> Alcotest.fail "unsound proof accepted"
  | Error e -> Alcotest.failf "unexpected error: %a" Proof.pp_error e

let test_proof_goal_mismatch () =
  let session = Session.create () in
  ignore (Session.add_peer session "p");
  let trace = Trace.Apply (Parser.parse_rule "p(1).", []) in
  let proof = Proof.create session ~prover:"p" ~goal:(lit "q(9)") trace in
  match Proof.verify session proof with
  | Error Proof.Goal_mismatch -> ()
  | Ok () -> Alcotest.fail "mismatched proof accepted"
  | Error e -> Alcotest.failf "unexpected error: %a" Proof.pp_error e

let test_proof_redaction () =
  let releasable (r : Rule.t) = Rule.is_signed r in
  let private_rule = Parser.parse_rule "helper(1) <- base(1)." in
  let signed_rule = Parser.parse_rule {|cred(1) signedBy ["CA"].|} in
  let top_rule =
    let r = Parser.parse_rule {|top(1) <- helper(1), cred(1).|} in
    { r with Rule.signer = [ "CA" ] }
  in
  let trace =
    Trace.Apply
      ( top_rule,
        [
          Trace.Apply
            (private_rule, [ Trace.Apply (Parser.parse_rule "base(1).", []) ]);
          Trace.Apply (signed_rule, []);
        ] )
  in
  let redacted = Proof.redact ~releasable ~self:"me" trace in
  match redacted with
  | Trace.Apply (_, [ Trace.Remote { peer = "me"; proof = None; _ }; Trace.Apply _ ]) ->
      ()
  | _ -> Alcotest.fail "private subtree should be opaque"

(* ------------------------------------------------------------------ *)
(* Grid scenario *)

let test_grid_submission () =
  let g = Scenario.grid () in
  let submit q cores =
    Negotiation.request_str g.Scenario.g_session ~requester:g.Scenario.g_user
      ~target:g.Scenario.g_cluster
      (Printf.sprintf {|submit(%s, "ada", %d)|} q cores)
  in
  Alcotest.(check bool) "batch job within cores" true
    (granted (submit "batch" 256).Negotiation.outcome);
  Alcotest.(check bool) "debug queue too small" false
    (granted (submit "debug" 64).Negotiation.outcome);
  Alcotest.(check bool) "debug job within cores" true
    (granted (submit "debug" 8).Negotiation.outcome)

let test_grid_delegated_membership () =
  (* The VO membership proof carries the delegation from the VO to its
     registration service. *)
  let g = Scenario.grid () in
  let r =
    Negotiation.request_str g.Scenario.g_session ~requester:g.Scenario.g_user
      ~target:g.Scenario.g_cluster {|submit(batch, "ada", 1)|}
  in
  Alcotest.(check bool) "granted" true (granted r.Negotiation.outcome);
  Alcotest.(check int) "three credentials: grid cert, delegation, membership"
    3 r.Negotiation.disclosures

let test_grid_marketplace_goals_all_run () =
  let mp = Scenario.marketplace ~providers:2 ~learners:3 ~courses_per_provider:2 () in
  Alcotest.(check int) "one goal per learner-provider pair" 6
    (List.length mp.Scenario.mp_goals);
  List.iter
    (fun (learner, provider, goal) ->
      let r =
        Negotiation.request mp.Scenario.mp_session ~requester:learner
          ~target:provider goal
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s at %s" learner provider)
        true
        (granted r.Negotiation.outcome))
    mp.Scenario.mp_goals

(* ------------------------------------------------------------------ *)
(* Proof attachment (attach_proofs session mode) *)

let test_attach_proofs_mode () =
  let config = { Session.default_config with Session.attach_proofs = true } in
  let session = Session.create ~config () in
  ignore
    (Session.add_peer session
       ~program:
         {|eligible(X) $ true <- badge(X) @ "CA".
           badge("req") @ "CA" signedBy ["CA"].|}
       "owner");
  ignore (Session.add_peer session "req");
  Engine.attach_all session;
  match Engine.query session ~requester:"req" ~target:"owner" (lit {|eligible("req")|}) with
  | [ (_, Some trace) ] ->
      (* The attached proof uses the owner's signed badge credential. *)
      let creds = Trace.credentials trace in
      Alcotest.(check int) "credential in proof" 1 (List.length creds);
      Alcotest.(check bool) "proof concludes the goal" true
        (match Proof.conclusion trace with
        | Some l -> String.equal l.Literal.pred "eligible"
        | None -> false)
  | [ (_, None) ] -> Alcotest.fail "proof should be attached"
  | _ -> Alcotest.fail "one instance expected"

let test_attach_proofs_off_by_default () =
  let session = two_peer_session {|info(1) $ true.|} "" in
  match Engine.query session ~requester:"req" ~target:"owner" (lit "info(X)") with
  | [ (_, None) ] -> ()
  | [ (_, Some _) ] -> Alcotest.fail "no proof expected by default"
  | _ -> Alcotest.fail "one instance expected"

(* ------------------------------------------------------------------ *)
(* Parametric worlds *)

let test_policy_chain_message_growth () =
  let messages depth =
    let w = Scenario.policy_chain ~depth () in
    let r =
      Negotiation.request w.Scenario.cw_session ~requester:w.Scenario.cw_requester
        ~target:w.Scenario.cw_owner w.Scenario.cw_goal
    in
    Alcotest.(check bool)
      (Printf.sprintf "depth %d granted" depth)
      true (granted r.Negotiation.outcome);
    r.Negotiation.messages
  in
  let m2 = messages 2 and m4 = messages 4 and m8 = messages 8 in
  Alcotest.(check bool) "messages grow with depth" true (m2 < m4 && m4 < m8)

let test_fanout_message_growth () =
  let messages width =
    let w = Scenario.fanout ~width () in
    let r =
      Negotiation.request w.Scenario.cw_session ~requester:w.Scenario.cw_requester
        ~target:w.Scenario.cw_owner w.Scenario.cw_goal
    in
    Alcotest.(check bool)
      (Printf.sprintf "width %d granted" width)
      true (granted r.Negotiation.outcome);
    r.Negotiation.messages
  in
  let m1 = messages 1 and m4 = messages 4 and m8 = messages 8 in
  Alcotest.(check bool) "messages grow with width" true (m1 < m4 && m4 < m8)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "core"
    [
      ( "policy",
        [
          tc "default private" test_policy_default_private;
          tc "true is public" test_policy_public;
          tc "guarded" test_policy_guarded;
          tc "credential via release rule" test_policy_credential_release;
          tc "credential without release rule" test_policy_credential_no_release_rule;
          tc "self-covering $ true fact" test_policy_credential_self_true_fact;
        ] );
      ( "peer",
        [
          tc "cycle detection" test_peer_cycle_detection;
          tc "goal key alpha-invariance" test_peer_goal_key_alpha_invariant;
          tc "certificate store" test_peer_cert_store;
        ] );
      ( "engine",
        [
          tc "private fact denied" test_engine_private_fact_denied;
          tc "public fact granted" test_engine_public_fact_granted;
          tc "release rule gate" test_engine_release_rule_gate;
          tc "private rules usable internally" test_engine_private_rule_usable_internally;
          tc "credential answers decorated goal" test_engine_credential_source;
          tc "signed rule with guard body" test_engine_signed_rule_with_guard_body;
          tc "counter-query" test_engine_counter_query;
          tc "policy cycle terminates" test_engine_cycle_terminates;
          tc "unreachable counter-party" test_engine_unreachable_peer;
          tc "max answers" test_engine_max_answers;
          tc "forged certs rejected" test_engine_rejects_forged_certs;
          tc "verification ablation" test_engine_verification_ablation;
          tc "instance caching" test_engine_instance_caching;
          tc "message budget" test_engine_message_budget;
          tc "hop budget" test_engine_max_hops;
        ] );
      ( "scenario1",
        [
          tc "success" test_scenario1_success;
          tc "transcript shape" test_scenario1_transcript_shape;
          tc "UIUC refuses E-Learn" test_scenario1_elearn_cannot_query_uiuc;
          tc "impostor denied" test_scenario1_impostor_denied;
          tc "wrong party denied" test_scenario1_wrong_party_denied;
          tc "no BBB proof, no student ID" test_scenario1_no_badge_no_deal;
        ] );
      ( "scenario2",
        [
          tc "free course" test_scenario2_free_course;
          tc "paid course" test_scenario2_paid_course;
          tc "over authorization limit" test_scenario2_over_authorization_denied;
          tc "credit limit" test_scenario2_credit_limit;
          tc "VISA down" test_scenario2_visa_down;
          tc "policy protection" test_scenario2_policy_protection;
          tc "stranger denied the card" test_scenario2_stranger_cannot_get_bobs_card;
          tc "merchant gets the card" test_scenario2_merchant_gets_bobs_card;
        ] );
      ( "strategy",
        [
          tc "all succeed on chain" test_strategies_all_succeed_on_chain;
          tc "all fail when impossible" test_strategies_all_fail_when_impossible;
          tc "eager over-disclosure" test_eager_overdiscloses;
          tc "deep chain comparison" test_eager_fewer_query_messages_deep_chain;
          tc "push saves messages" test_push_relevant_fewer_messages;
        ] );
      ( "chain",
        [
          tc "linear discovery" test_chain_discovery_linear;
          tc "broken chain" test_chain_discovery_broken;
          tc "wrong subject" test_chain_discovery_wrong_subject;
        ] );
      ( "delegation",
        [
          tc "rule shape" test_delegation_rule_shape;
          tc "grant and use" test_delegation_grant_and_use;
          tc "unsigned rejected" test_delegation_unsigned_rejected;
          tc "chain extraction" test_delegation_chain_extraction;
        ] );
      ( "proof",
        [
          tc "verify ok" test_proof_verify_ok;
          tc "tampered goal" test_proof_tampered_goal;
          tc "missing certificate" test_proof_missing_cert;
          tc "unsound step" test_proof_unsound_step;
          tc "goal mismatch" test_proof_goal_mismatch;
          tc "redaction" test_proof_redaction;
        ] );
      ( "grid and marketplace",
        [
          tc "job submission" test_grid_submission;
          tc "delegated membership" test_grid_delegated_membership;
          tc "marketplace goals" test_grid_marketplace_goals_all_run;
        ] );
      ( "proof attachment",
        [
          tc "attached when enabled" test_attach_proofs_mode;
          tc "absent by default" test_attach_proofs_off_by_default;
        ] );
      ( "worlds",
        [
          tc "policy chain growth" test_policy_chain_message_growth;
          tc "fanout growth" test_fanout_message_growth;
        ] );
    ]

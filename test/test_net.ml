(* Tests for the simulated network substrate: clock, stats, messages,
   delivery, failure injection, budgets and transcripts. *)

open Peertrust_net
module Dlp = Peertrust_dlp

let lit s = Dlp.Parser.parse_literal s

let test_clock () =
  let c = Clock.create () in
  Alcotest.(check int) "starts at zero" 0 (Clock.now c);
  Clock.advance c 5;
  Clock.advance c 2;
  Alcotest.(check int) "accumulates" 7 (Clock.now c);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Clock.advance: negative increment") (fun () ->
      Clock.advance c (-1))

let test_stats_counters () =
  let s = Stats.create () in
  Stats.record s Stats.Query ~bytes_:10 ~from:"a" ~target:"b";
  Stats.record s Stats.Answer ~bytes_:20 ~from:"b" ~target:"a";
  Stats.record s Stats.Query ~bytes_:5 ~from:"a" ~target:"c";
  Alcotest.(check int) "messages" 3 (Stats.messages s);
  Alcotest.(check int) "bytes" 35 (Stats.bytes s);
  Alcotest.(check int) "queries" 2 (Stats.messages_of_kind s Stats.Query);
  Alcotest.(check int) "answers" 1 (Stats.messages_of_kind s Stats.Answer);
  Alcotest.(check int) "a->b" 1 (Stats.between s "a" "b");
  Alcotest.(check int) "b->a" 1 (Stats.between s "b" "a");
  Alcotest.(check int) "a->c directed" 0 (Stats.between s "c" "a");
  Alcotest.(check (list string)) "peers in first-seen order" [ "a"; "b"; "c" ]
    (Stats.peers_seen s);
  Stats.reset s;
  Alcotest.(check int) "reset" 0 (Stats.messages s)

let test_message_kinds_and_sizes () =
  let q = Message.Query { goal = lit {|p("x")|} } in
  let d = Message.Deny { goal = lit {|p("x")|}; reason = "nope" } in
  Alcotest.(check bool) "query kind" true (Message.kind q = Stats.Query);
  Alcotest.(check bool) "deny kind" true (Message.kind d = Stats.Deny);
  Alcotest.(check bool) "query smaller than deny" true
    (Message.size q < Message.size d);
  Alcotest.(check int) "no certs in query" 0 (Message.cert_count q)

let echo_handler ~from:_ payload =
  match payload with
  | Message.Query { goal } ->
      Message.Answer { goal; instances = [ (goal, None) ]; certs = [] }
  | _ -> Message.Ack

let test_network_roundtrip () =
  let net = Network.create () in
  Network.register net "server" echo_handler;
  let resp =
    Network.send net ~from:"client" ~target:"server"
      (Message.Query { goal = lit "ping(1)" })
  in
  (match resp with
  | Message.Answer { instances = [ (l, None) ]; _ } ->
      Alcotest.(check string) "echoed" "ping(1)" (Dlp.Literal.to_string l)
  | _ -> Alcotest.fail "expected answer");
  Alcotest.(check int) "two messages" 2 (Stats.messages (Network.stats net));
  Alcotest.(check int) "two ticks" 2 (Clock.now (Network.clock net))

let test_network_latency () =
  let net = Network.create ~latency:5 () in
  Network.register net "server" echo_handler;
  ignore
    (Network.send net ~from:"client" ~target:"server"
       (Message.Query { goal = lit "ping(1)" }));
  Alcotest.(check int) "10 ticks for a round trip" 10 (Clock.now (Network.clock net))

let test_network_unknown_peer () =
  let net = Network.create () in
  Alcotest.check_raises "unknown" (Network.Unreachable "ghost") (fun () ->
      ignore
        (Network.send net ~from:"client" ~target:"ghost"
           (Message.Query { goal = lit "ping(1)" })))

let test_network_down_peer () =
  let net = Network.create () in
  Network.register net "server" echo_handler;
  Network.set_down net "server" true;
  Alcotest.(check bool) "marked down" true (Network.is_down net "server");
  Alcotest.check_raises "down" (Network.Unreachable "server") (fun () ->
      ignore
        (Network.send net ~from:"client" ~target:"server"
           (Message.Query { goal = lit "ping(1)" })));
  Network.set_down net "server" false;
  ignore
    (Network.send net ~from:"client" ~target:"server"
       (Message.Query { goal = lit "ping(1)" }))

let test_network_budget () =
  let net = Network.create ~max_messages:3 () in
  Network.register net "server" echo_handler;
  ignore
    (Network.send net ~from:"client" ~target:"server"
       (Message.Query { goal = lit "ping(1)" }));
  (* Second round trip would exceed 3 messages on its response. *)
  Alcotest.check_raises "budget" Network.Budget_exhausted (fun () ->
      ignore
        (Network.send net ~from:"client" ~target:"server"
           (Message.Query { goal = lit "ping(2)" }));
      ignore
        (Network.send net ~from:"client" ~target:"server"
           (Message.Query { goal = lit "ping(3)" })))

let test_network_link_latency () =
  let net = Network.create ~latency:1 () in
  Network.register net "far" echo_handler;
  Network.register net "near" echo_handler;
  Network.set_link_latency net ~from:"client" ~target:"far" 10;
  Alcotest.(check int) "override read back" 10
    (Network.link_latency net ~from:"client" ~target:"far");
  Alcotest.(check int) "default elsewhere" 1
    (Network.link_latency net ~from:"client" ~target:"near");
  ignore
    (Network.send net ~from:"client" ~target:"far"
       (Message.Query { goal = lit "ping(1)" }));
  (* 10 ticks out (overridden), 1 back (default). *)
  Alcotest.(check int) "asymmetric round trip" 11 (Clock.now (Network.clock net));
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Network.set_link_latency: negative") (fun () ->
      Network.set_link_latency net ~from:"a" ~target:"b" (-1))

let test_network_notify () =
  let net = Network.create () in
  Network.register net "server" echo_handler;
  Network.notify net ~from:"client" ~target:"server"
    (Message.Query { goal = lit "ping(1)" });
  (* One direction only: accounted but no handler response. *)
  Alcotest.(check int) "one message" 1 (Stats.messages (Network.stats net));
  Alcotest.(check int) "one entry" 1 (List.length (Network.transcript net))

let test_network_transcript () =
  let net = Network.create () in
  Network.register net "server" echo_handler;
  ignore
    (Network.send net ~from:"client" ~target:"server"
       (Message.Query { goal = lit "ping(1)" }));
  let log = Network.transcript net in
  Alcotest.(check int) "two entries" 2 (List.length log);
  (match log with
  | [ req; resp ] ->
      Alcotest.(check string) "request from" "client" req.Network.from;
      Alcotest.(check string) "response from" "server" resp.Network.from;
      Alcotest.(check bool) "ordered in time" true
        (req.Network.time <= resp.Network.time)
  | _ -> Alcotest.fail "expected two entries");
  Network.clear_transcript net;
  Alcotest.(check int) "cleared" 0 (List.length (Network.transcript net))

let test_network_reregister () =
  let net = Network.create () in
  Network.register net "server" echo_handler;
  Network.register net "server" (fun ~from:_ _ -> Message.Ack);
  (match
     Network.send net ~from:"client" ~target:"server"
       (Message.Query { goal = lit "ping(1)" })
   with
  | Message.Ack -> ()
  | _ -> Alcotest.fail "replacement handler should answer");
  Network.unregister net "server";
  Alcotest.check_raises "unregistered" (Network.Unreachable "server")
    (fun () ->
      ignore
        (Network.send net ~from:"client" ~target:"server"
           (Message.Query { goal = lit "ping(1)" })))

let test_network_registered_list () =
  let net = Network.create () in
  Network.register net "b" echo_handler;
  Network.register net "a" echo_handler;
  Alcotest.(check (list string)) "sorted" [ "a"; "b" ] (Network.registered net)

(* ------------------------------------------------------------------ *)
(* Wire framing and trace propagation *)

module Tctx = Peertrust_obs.Trace_context

let sample_header ?trace () =
  {
    Wire.h_id = 7;
    h_seq = 3;
    h_attempt = 1;
    h_from = "Alice";
    h_target = "E-Learn";
    h_sent_at = 12;
    h_deliver_at = 14;
    h_kind = "query";
    h_bytes = 96;
    h_incarnation = 0;
    h_tabling = None;
    h_trace = trace;
  }

let header_testable =
  Alcotest.testable
    (fun fmt h -> Format.pp_print_string fmt (String.escaped (Wire.encode h)))
    ( = )

let test_wire_roundtrip () =
  let check_rt label h =
    match Wire.decode (Wire.encode h) with
    | Ok h' -> Alcotest.check header_testable label h h'
    | Error e -> Alcotest.failf "%s: %a" label Wire.pp_error e
  in
  check_rt "untraced header" (sample_header ());
  check_rt "traced header"
    (sample_header
       ~trace:(Tctx.make ~trace_id:194 ~parent_span:31 ())
       ());
  check_rt "unsampled context"
    (sample_header
       ~trace:(Tctx.make ~sampled:false ~trace_id:2 ~parent_span:0 ())
       ());
  (* Peer names that collide with the frame syntax must survive. *)
  check_rt "names needing escaping"
    {
      (sample_header ()) with
      Wire.h_from = "evil\npeer";
      h_target = "tab\tand \"quotes\"";
    }

let test_wire_envelope () =
  let ctx = Tctx.make ~trace_id:5 ~parent_span:9 () in
  let env =
    {
      Envelope.id = 41;
      seq = 2;
      from_ = "Bob";
      target = "E-Learn";
      sent_at = 3;
      deliver_at = 5;
      attempt = 0;
      incarnation = 0;
      trace = Some ctx;
      payload = Message.Query { goal = lit {|p("x")|} };
    }
  in
  let h = Wire.header_of_envelope env in
  Alcotest.(check string) "kind from the payload" "query" h.Wire.h_kind;
  Alcotest.(check int) "accounted size" (Message.size env.Envelope.payload)
    h.Wire.h_bytes;
  Alcotest.(check string) "envelope encoding is the header's"
    (Wire.encode h) (Wire.encode_envelope env);
  match Wire.decode (Wire.encode_envelope env) with
  | Ok h' ->
      Alcotest.(check bool) "trace context survives the frame" true
        (h'.Wire.h_trace = Some ctx)
  | Error e -> Alcotest.failf "decode failed: %a" Wire.pp_error e

let test_wire_decode_garbage () =
  let expect_error label input =
    match Wire.decode input with
    | Ok _ -> Alcotest.failf "%s: accepted %S" label input
    | Error (Wire.Malformed { line; _ }) ->
        Alcotest.(check bool)
          (label ^ ": line is 1-based") true (line >= 1)
  in
  expect_error "empty" "";
  expect_error "wrong magic" "HTTP/1.1 200 OK\n";
  let good = Wire.encode (sample_header ()) in
  expect_error "truncated" (String.sub good 0 (String.length good / 2));
  expect_error "junk appended" (good ^ "junk\n");
  (* A frame whose traceparent field is corrupt must be rejected as
     malformed, not silently accepted without the context. *)
  let traced =
    Wire.encode
      (sample_header ~trace:(Tctx.make ~trace_id:1 ~parent_span:0 ()) ())
  in
  let corrupt =
    String.concat "\n"
      (List.map
         (fun l ->
           if String.length l >= 11 && String.sub l 0 11 = "traceparent" then
             "traceparent: pt1-zzzz"
           else l)
         (String.split_on_char '\n' traced))
  in
  expect_error "corrupt traceparent" corrupt

let test_post_stamps_trace () =
  let net = Network.create () in
  Network.register net "server" echo_handler;
  let q () = Message.Query { goal = lit "ping(1)" } in
  (match Network.post net ~from:"client" ~target:"server" (q ()) with
  | [ env ] ->
      Alcotest.(check bool) "untraced by default" true
        (env.Envelope.trace = None)
  | envs -> Alcotest.failf "expected 1 envelope, got %d" (List.length envs));
  let ctx = Tctx.make ~trace_id:3 ~parent_span:8 () in
  match Network.post net ~from:"client" ~target:"server" ~trace:ctx (q ()) with
  | [ env ] ->
      Alcotest.(check bool) "context stamped verbatim" true
        (env.Envelope.trace = Some ctx)
  | envs -> Alcotest.failf "expected 1 envelope, got %d" (List.length envs)

let test_post_duplicates_share_trace () =
  (* Every duplicated copy carries the same propagated context. *)
  let net = Network.create () in
  Network.register net "server" echo_handler;
  Network.set_faults net (Faults.create ~duplicate:1.0 ~seed:9L ());
  let ctx = Tctx.make ~trace_id:6 ~parent_span:2 () in
  match
    Network.post net ~from:"client" ~target:"server" ~trace:ctx
      (Message.Query { goal = lit "ping(1)" })
  with
  | ([ _; _ ] | [ _; _; _ ]) as envs ->
      List.iter
        (fun (env : Envelope.t) ->
          Alcotest.(check bool) "copy keeps the context" true
            (env.Envelope.trace = Some ctx))
        envs
  | envs -> Alcotest.failf "expected duplicated copies, got %d" (List.length envs)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "net"
    [
      ("clock", [ tc "advance" test_clock ]);
      ("stats", [ tc "counters" test_stats_counters ]);
      ("message", [ tc "kinds and sizes" test_message_kinds_and_sizes ]);
      ( "network",
        [
          tc "roundtrip" test_network_roundtrip;
          tc "latency" test_network_latency;
          tc "unknown peer" test_network_unknown_peer;
          tc "down peer" test_network_down_peer;
          tc "message budget" test_network_budget;
          tc "per-link latency" test_network_link_latency;
          tc "one-way notify" test_network_notify;
          tc "transcript" test_network_transcript;
          tc "re-register / unregister" test_network_reregister;
          tc "registered list" test_network_registered_list;
        ] );
      ( "wire",
        [
          tc "header round-trip" test_wire_roundtrip;
          tc "envelope framing" test_wire_envelope;
          tc "garbage rejected, never raises" test_wire_decode_garbage;
          tc "post stamps the trace context" test_post_stamps_trace;
          tc "duplicates share the context" test_post_duplicates_share_trace;
        ] );
    ]

(* Tests for the run-time mechanisms of the paper's §3 paragraph on
   access-granting: nontransferable access tokens and audit trails. *)

open Peertrust
open Peertrust_dlp
module Net = Peertrust_net

let lit = Parser.parse_literal
let granted = Negotiation.succeeded

let token_world () =
  let session = Session.create () in
  ignore
    (Session.add_peer session
       ~program:
         {|spanishCourse("s1") $ cred(Requester) @ "CA" <-{true} offered("s1").
           offered("s1").
           cred(X) @ "CA" <- cred(X) @ "CA" @ X.|}
       "elearn");
  ignore
    (Session.add_peer session
       ~program:{|cred("alice") @ "CA" $ true signedBy ["CA"].|}
       "alice");
  ignore (Session.add_peer session "mallory");
  Engine.attach_all session;
  session

(* ------------------------------------------------------------------ *)
(* Tokens *)

let test_token_grant_and_redeem () =
  let session = token_world () in
  let goal = lit {|spanishCourse("s1")|} in
  let report, token =
    Token.negotiate_with_token session ~requester:"alice" ~target:"elearn"
      ~ttl:100 goal
  in
  Alcotest.(check bool) "negotiation granted" true (granted report);
  match token with
  | None -> Alcotest.fail "token expected"
  | Some token -> (
      match Token.redeem session ~issuer:"elearn" ~bearer:"alice" ~goal token with
      | Ok () -> ()
      | Error e -> Alcotest.failf "redeem failed: %a" Token.pp_error e)

let test_token_not_transferable () =
  let session = token_world () in
  let goal = lit {|spanishCourse("s1")|} in
  let _, token =
    Token.negotiate_with_token session ~requester:"alice" ~target:"elearn"
      ~ttl:100 goal
  in
  match Option.get token with
  | token -> (
      match Token.redeem session ~issuer:"elearn" ~bearer:"mallory" ~goal token with
      | Error (Token.Wrong_holder "mallory") -> ()
      | Ok () -> Alcotest.fail "transferred token accepted"
      | Error e -> Alcotest.failf "unexpected: %a" Token.pp_error e)

let test_token_wrong_service () =
  let session = token_world () in
  let goal = lit {|spanishCourse("s1")|} in
  let token = Token.grant session ~issuer:"elearn" ~holder:"alice" ~goal ~ttl:10 in
  match
    Token.redeem session ~issuer:"elearn" ~bearer:"alice"
      ~goal:(lit {|frenchCourse("f1")|}) token
  with
  | Error Token.Wrong_service -> ()
  | Ok () -> Alcotest.fail "cross-service token accepted"
  | Error e -> Alcotest.failf "unexpected: %a" Token.pp_error e

let test_token_same_service_other_instance () =
  (* The token covers the service skeleton, so another course instance of
     the same service predicate is covered. *)
  let session = token_world () in
  let token =
    Token.grant session ~issuer:"elearn" ~holder:"alice"
      ~goal:(lit {|spanishCourse("s1")|}) ~ttl:10
  in
  match
    Token.redeem session ~issuer:"elearn" ~bearer:"alice"
      ~goal:(lit {|spanishCourse("s2")|}) token
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "skeleton should cover: %a" Token.pp_error e

let test_token_expiry () =
  let config = { Session.default_config with Session.now = 50 } in
  let session = Session.create ~config () in
  ignore (Session.add_peer session "elearn");
  ignore (Session.add_peer session "alice");
  let goal = lit {|course("c")|} in
  let token = Token.grant session ~issuer:"elearn" ~holder:"alice" ~goal ~ttl:10 in
  (* Valid at issue time... *)
  (match Token.redeem session ~issuer:"elearn" ~bearer:"alice" ~goal token with
  | Ok () -> ()
  | Error e -> Alcotest.failf "fresh token rejected: %a" Token.pp_error e);
  (* ...but a session living at a later instant rejects it. *)
  let later =
    { session with Session.config = { config with Session.now = 100 } }
  in
  match Token.redeem later ~issuer:"elearn" ~bearer:"alice" ~goal token with
  | Error (Token.Invalid (Peertrust_crypto.Cert.Expired _)) -> ()
  | Ok () -> Alcotest.fail "expired token accepted"
  | Error e -> Alcotest.failf "unexpected: %a" Token.pp_error e

let test_token_revocation () =
  let session = token_world () in
  let goal = lit {|spanishCourse("s1")|} in
  let token = Token.grant session ~issuer:"elearn" ~holder:"alice" ~goal ~ttl:10 in
  Token.revoke session token;
  match Token.redeem session ~issuer:"elearn" ~bearer:"alice" ~goal token with
  | Error (Token.Invalid (Peertrust_crypto.Cert.Revoked _)) -> ()
  | Ok () -> Alcotest.fail "revoked token accepted"
  | Error e -> Alcotest.failf "unexpected: %a" Token.pp_error e

let test_token_wrong_issuer () =
  let session = token_world () in
  let goal = lit {|spanishCourse("s1")|} in
  let token = Token.grant session ~issuer:"elearn" ~holder:"alice" ~goal ~ttl:10 in
  match Token.redeem session ~issuer:"mallory" ~bearer:"alice" ~goal token with
  | Error (Token.Invalid _) -> ()
  | Ok () -> Alcotest.fail "token from another issuer accepted"
  | Error e -> Alcotest.failf "unexpected: %a" Token.pp_error e

let test_token_skips_renegotiation () =
  (* Redeeming is message-free: the whole point of the mechanism. *)
  let session = token_world () in
  let goal = lit {|spanishCourse("s1")|} in
  let _, token =
    Token.negotiate_with_token session ~requester:"alice" ~target:"elearn"
      ~ttl:100 goal
  in
  let stats = Net.Network.stats session.Session.network in
  let before = Net.Stats.messages stats in
  (match Token.redeem session ~issuer:"elearn" ~bearer:"alice" ~goal (Option.get token) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "redeem failed: %a" Token.pp_error e);
  Alcotest.(check int) "no messages for redemption" before
    (Net.Stats.messages stats)

(* ------------------------------------------------------------------ *)
(* Audit trail *)

let test_audit_records_decisions () =
  let session = token_world () in
  let audit = Audit.create () in
  Audit.attach audit session;
  ignore
    (Negotiation.request session ~requester:"alice" ~target:"elearn"
       (lit {|spanishCourse("s1")|}));
  ignore
    (Negotiation.request session ~requester:"mallory" ~target:"elearn"
       (lit {|spanishCourse("s1")|}));
  let entries = Audit.entries audit in
  Alcotest.(check bool) "some entries" true (List.length entries >= 2);
  let elearn_entries = Audit.for_peer audit "elearn" in
  Alcotest.(check bool) "grant logged at elearn" true
    (List.exists
       (fun (e : Audit.entry) ->
         e.Audit.requester = "alice" && e.Audit.decision = Audit.Grant)
       elearn_entries);
  Alcotest.(check bool) "denial logged at elearn" true
    (List.exists
       (fun (e : Audit.entry) ->
         e.Audit.requester = "mallory"
         && match e.Audit.decision with Audit.Deny _ -> true | _ -> false)
       elearn_entries)

let test_audit_credentials_recorded () =
  let session = token_world () in
  let audit = Audit.create () in
  Audit.attach audit session;
  ignore
    (Negotiation.request session ~requester:"alice" ~target:"elearn"
       (lit {|spanishCourse("s1")|}));
  (* Alice's counter-answer disclosed her CA credential: its serial must
     appear in her audit entry. *)
  let alice_grants =
    List.filter
      (fun (e : Audit.entry) -> e.Audit.decision = Audit.Grant)
      (Audit.for_peer audit "alice")
  in
  Alcotest.(check bool) "credential serial recorded" true
    (List.exists (fun (e : Audit.entry) -> e.Audit.credentials <> []) alice_grants)

let test_audit_chronological_and_filtered () =
  let session = token_world () in
  let audit = Audit.create () in
  Audit.attach audit session;
  ignore
    (Negotiation.request session ~requester:"mallory" ~target:"elearn"
       (lit {|spanishCourse("s1")|}));
  ignore
    (Negotiation.request session ~requester:"alice" ~target:"elearn"
       (lit {|spanishCourse("s1")|}));
  let entries = Audit.entries audit in
  let times = List.map (fun (e : Audit.entry) -> e.Audit.at) entries in
  Alcotest.(check bool) "chronological" true
    (List.sort compare times = times);
  Alcotest.(check int) "grants + denials = all"
    (List.length entries)
    (List.length (Audit.grants audit) + List.length (Audit.denials audit))

(* ------------------------------------------------------------------ *)
(* World persistence *)

let with_temp_dir f =
  let dir = Filename.temp_file "ptworld" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun file -> Sys.remove (Filename.concat dir file))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_persist_roundtrip () =
  with_temp_dir @@ fun dir ->
  let s = Scenario.scenario1 () in
  Persist.save s.Scenario.s1_session ~dir;
  match Persist.load ~dir () with
  | Error e -> Alcotest.failf "load failed: %a" Persist.pp_error e
  | Ok session ->
      let r =
        Negotiation.request_str session ~requester:"Alice" ~target:"E-Learn"
          {|discountEnroll(spanish101, "Alice")|}
      in
      Alcotest.(check bool) "reloaded world negotiates" true (granted r);
      Alcotest.(check int) "same message count as fresh world" 6
        r.Negotiation.messages

let test_persist_preserves_learned_state () =
  with_temp_dir @@ fun dir ->
  let s = Scenario.scenario1 () in
  (* Run once so Alice caches E-Learn's BBB credential... *)
  ignore
    (Negotiation.request_str s.Scenario.s1_session ~requester:"Alice"
       ~target:"E-Learn" {|discountEnroll(spanish101, "Alice")|});
  Persist.save s.Scenario.s1_session ~dir;
  match Persist.load ~dir () with
  | Error e -> Alcotest.failf "load failed: %a" Persist.pp_error e
  | Ok session ->
      (* ...so the reloaded world answers with fewer messages than cold. *)
      let r =
        Negotiation.request_str session ~requester:"Alice" ~target:"E-Learn"
          {|discountEnroll(spanish101, "Alice")|}
      in
      Alcotest.(check bool) "granted" true (granted r);
      Alcotest.(check bool) "cache survived the roundtrip" true
        (r.Negotiation.messages < 6)

let test_persist_missing_meta () =
  with_temp_dir @@ fun dir ->
  match Persist.load ~dir () with
  | Error (Persist.Bad_world _) -> ()
  | Ok _ -> Alcotest.fail "empty dir accepted"

(* Corrupt worlds: every flavour of damage must come back as a
   structured [Bad_world] naming the file (and line, where a parser is
   involved) — never an exception. *)

let write_raw path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let expect_bad_world ~substr result =
  let contains s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    n = 0 || go 0
  in
  match result with
  | Ok _ -> Alcotest.fail "corrupt world loaded"
  | Error (Persist.Bad_world m) ->
      if not (contains m substr) then
        Alcotest.failf "reason %S does not mention %S" m substr

let saved_single_peer_world dir =
  let session = Session.create () in
  ignore (Session.add_peer session ~program:{|info(1) $ true.|} "owner");
  Engine.attach_all session;
  Persist.save session ~dir

let test_persist_bad_magic () =
  with_temp_dir @@ fun dir ->
  Sys.mkdir dir 0o755;
  write_raw (Filename.concat dir "world.meta") "who knows\n";
  expect_bad_world ~substr:"world.meta line 1" (Persist.load ~dir ())

let test_persist_truncated_meta () =
  with_temp_dir @@ fun dir ->
  Sys.mkdir dir 0o755;
  write_raw (Filename.concat dir "world.meta") "";
  expect_bad_world ~substr:"world.meta line 1" (Persist.load ~dir ())

let test_persist_corrupt_meta_entry () =
  with_temp_dir @@ fun dir ->
  Sys.mkdir dir 0o755;
  write_raw
    (Filename.concat dir "world.meta")
    "peertrust-world 1\npeer: zero 6f776e6572\n";
  expect_bad_world ~substr:"world.meta line 2" (Persist.load ~dir ())

let test_persist_missing_program () =
  with_temp_dir @@ fun dir ->
  saved_single_peer_world dir;
  Sys.remove (Filename.concat dir "peer0.pt");
  expect_bad_world ~substr:"missing peer0.pt" (Persist.load ~dir ())

let test_persist_garbage_program () =
  with_temp_dir @@ fun dir ->
  saved_single_peer_world dir;
  write_raw (Filename.concat dir "peer0.pt") "info(1 $ true.\nrule( <- junk";
  expect_bad_world ~substr:"peer0.pt line" (Persist.load ~dir ())

let test_persist_garbage_wallet () =
  with_temp_dir @@ fun dir ->
  saved_single_peer_world dir;
  write_raw
    (Filename.concat dir "peer0.wallet")
    "-----BEGIN PEERTRUST CERTIFICATE-----\n\
     serial: x\n\
     -----END PEERTRUST CERTIFICATE-----\n";
  expect_bad_world ~substr:"peer0.wallet: line 2" (Persist.load ~dir ())

let test_persist_truncated_wallet () =
  with_temp_dir @@ fun dir ->
  saved_single_peer_world dir;
  write_raw
    (Filename.concat dir "peer0.wallet")
    "-----BEGIN PEERTRUST CERTIFICATE-----\nserial: 4\n";
  expect_bad_world ~substr:"peer0.wallet" (Persist.load ~dir ())

let test_persist_odd_peer_names () =
  with_temp_dir @@ fun dir ->
  let session = Session.create () in
  ignore (Session.add_peer session ~program:{|info(1) $ true.|} "Weird: Name/1");
  ignore (Session.add_peer session "client peer");
  Engine.attach_all session;
  Persist.save session ~dir;
  match Persist.load ~dir () with
  | Error e -> Alcotest.failf "load failed: %a" Persist.pp_error e
  | Ok loaded ->
      Alcotest.(check (list string)) "names survive"
        [ "Weird: Name/1"; "client peer" ]
        (Session.peer_names loaded)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "runtime"
    [
      ( "token",
        [
          tc "grant and redeem" test_token_grant_and_redeem;
          tc "not transferable" test_token_not_transferable;
          tc "wrong service" test_token_wrong_service;
          tc "same service, other instance" test_token_same_service_other_instance;
          tc "expiry" test_token_expiry;
          tc "revocation" test_token_revocation;
          tc "wrong issuer" test_token_wrong_issuer;
          tc "redemption is message-free" test_token_skips_renegotiation;
        ] );
      ( "audit",
        [
          tc "records decisions" test_audit_records_decisions;
          tc "records credentials" test_audit_credentials_recorded;
          tc "chronological and filtered" test_audit_chronological_and_filtered;
        ] );
      ( "persist",
        [
          tc "roundtrip" test_persist_roundtrip;
          tc "learned state survives" test_persist_preserves_learned_state;
          tc "missing meta" test_persist_missing_meta;
          tc "odd peer names" test_persist_odd_peer_names;
        ] );
      ( "persist corruption",
        [
          tc "bad magic" test_persist_bad_magic;
          tc "truncated meta" test_persist_truncated_meta;
          tc "corrupt meta entry" test_persist_corrupt_meta_entry;
          tc "missing program" test_persist_missing_program;
          tc "garbage program" test_persist_garbage_program;
          tc "garbage wallet" test_persist_garbage_wallet;
          tc "truncated wallet" test_persist_truncated_wallet;
        ] );
    ]

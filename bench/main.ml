(* Benchmark harness: regenerates every experiment in DESIGN.md §2.

   The paper (VLDB'04 workshop version) has no numeric tables — its
   evaluation is the two worked scenarios of §4 — so E1/E2 regenerate those
   scenarios (transcripts + costs) and E3..E10 are the quantitative
   experiments the paper's claims imply (see DESIGN.md and EXPERIMENTS.md).

   Usage:
     bench/main.exe                 run every experiment (E1..E10)
     bench/main.exe e3 e5           run selected experiments
     bench/main.exe micro           Bechamel micro-benchmarks
     bench/main.exe --metrics-dir D write BENCH_<name>.json metric
                                    snapshots into directory D (default ".")
     bench/main.exe diff [--baseline FILE | --against-seed NAME]
                         [--tolerance R] [--inflate R] [--json] FRESH.json
                                    regression-check a fresh snapshot
                                    against a committed baseline; exits 1
                                    on any out-of-band metric
*)

open Peertrust
module Dlp = Peertrust_dlp
module Crypto = Peertrust_crypto
module Net = Peertrust_net
module Pobs = Peertrust_obs

(* ------------------------------------------------------------------ *)
(* Small table printer *)

let print_table ~title ~header rows =
  let ncols = List.length header in
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    rows;
  let pad i s = Printf.sprintf "%-*s" widths.(i) s in
  Printf.printf "\n%s\n" title;
  Printf.printf "%s\n" (String.concat "  " (List.mapi pad header));
  Printf.printf "%s\n"
    (String.concat "  "
       (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
  List.iter
    (fun row -> Printf.printf "%s\n" (String.concat "  " (List.mapi pad row)))
    rows;
  flush stdout

let fmt_ms seconds = Printf.sprintf "%.2f" (seconds *. 1000.)

(* Median CPU time of [runs] executions of [f] (fresh input per run). *)
let time_median ?(runs = 5) f =
  let samples =
    List.init runs (fun _ ->
        let t0 = Sys.time () in
        f ();
        Sys.time () -. t0)
  in
  let sorted = List.sort compare samples in
  List.nth sorted (runs / 2)

let outcome_str r = if Negotiation.succeeded r then "granted" else "denied"

(* ------------------------------------------------------------------ *)
(* E1: Scenario 1 (§4.1) *)

let e1 () =
  let s = Scenario.scenario1 () in
  let session = s.Scenario.s1_session in
  let goals =
    [
      ("Alice", "E-Learn", {|discountEnroll(spanish101, "Alice")|});
      ("E-Learn", "UIUC", {|student("Alice")|});
      ("Alice", "E-Learn", {|discountEnroll(spanish101, "Mallory")|});
    ]
  in
  let rows =
    List.map
      (fun (req, tgt, goal) ->
        let r = Negotiation.request_str session ~requester:req ~target:tgt goal in
        [
          Printf.sprintf "%s -> %s" req tgt;
          goal;
          outcome_str r;
          string_of_int r.Negotiation.messages;
          string_of_int r.Negotiation.bytes;
          string_of_int r.Negotiation.disclosures;
          string_of_int r.Negotiation.elapsed;
        ])
      goals
  in
  print_table
    ~title:
      "E1  Scenario 1: Alice & E-Learn (paper §4.1; first row is the paper's \
       negotiation)"
    ~header:[ "negotiation"; "goal"; "outcome"; "msgs"; "bytes"; "certs"; "ticks" ]
    rows;
  (* The headline transcript, as narrated in the paper. *)
  let fresh = Scenario.scenario1 () in
  let r =
    Negotiation.request_str fresh.Scenario.s1_session ~requester:"Alice"
      ~target:"E-Learn" {|discountEnroll(spanish101, "Alice")|}
  in
  Printf.printf "\n  transcript of the headline negotiation:\n";
  List.iter
    (fun e ->
      Printf.printf "    [%d] %s -> %s: %s\n" e.Net.Network.time
        e.Net.Network.from e.Net.Network.target e.Net.Network.summary)
    r.Negotiation.transcript

(* ------------------------------------------------------------------ *)
(* E2: Scenario 2 (§4.2) *)

let e2 () =
  let run ?visa_limit goal =
    let s = Scenario.scenario2 ?visa_limit () in
    Negotiation.request_str s.Scenario.s2_session ~requester:"Bob"
      ~target:"E-Learn" goal
  in
  let cases =
    [
      ("free course (cs101)", {|enroll(cs101, "Bob", "IBM", Email, 0)|}, None);
      ("paid course (cs411, $1000)", {|enroll(cs411, "Bob", "IBM", Email, Price)|}, None);
      ("over authorization (cs500, $3000)", {|enroll(cs500, "Bob", "IBM", Email, Price)|}, None);
      ("credit limit $500 (cs411)", {|enroll(cs411, "Bob", "IBM", Email, Price)|}, Some 500);
      ("private policy queried directly", {|freebieEligible(cs101, "Bob", "IBM", Email)|}, None);
    ]
  in
  let rows =
    List.map
      (fun (label, goal, visa_limit) ->
        let r = run ?visa_limit goal in
        [
          label;
          outcome_str r;
          string_of_int r.Negotiation.messages;
          string_of_int r.Negotiation.bytes;
          string_of_int r.Negotiation.disclosures;
          string_of_int r.Negotiation.elapsed;
        ])
      cases
  in
  print_table
    ~title:"E2  Scenario 2: signing up for learning services (paper §4.2)"
    ~header:[ "case"; "outcome"; "msgs"; "bytes"; "certs"; "ticks" ]
    rows

(* ------------------------------------------------------------------ *)
(* E3: policy-chain depth scaling *)

let e3 () =
  let depths = [ 1; 2; 4; 8; 16; 32 ] in
  let rows =
    List.map
      (fun depth ->
        let build () = Scenario.policy_chain ~depth () in
        let w = build () in
        let r =
          Negotiation.request w.Scenario.cw_session
            ~requester:w.Scenario.cw_requester ~target:w.Scenario.cw_owner
            w.Scenario.cw_goal
        in
        let t =
          time_median (fun () ->
              let w = build () in
              ignore
                (Negotiation.request w.Scenario.cw_session
                   ~requester:w.Scenario.cw_requester
                   ~target:w.Scenario.cw_owner w.Scenario.cw_goal))
        in
        [
          string_of_int depth;
          outcome_str r;
          string_of_int r.Negotiation.messages;
          string_of_int r.Negotiation.disclosures;
          string_of_int r.Negotiation.elapsed;
          fmt_ms t;
        ])
      depths
  in
  print_table
    ~title:
      "E3  Bilateral policy-chain depth scaling (messages grow linearly, \
       2*depth + 2)"
    ~header:[ "depth"; "outcome"; "msgs"; "certs"; "ticks"; "ms (incl setup)" ]
    rows

(* ------------------------------------------------------------------ *)
(* E4: policy fan-out scaling *)

let e4 () =
  let widths = [ 1; 2; 4; 8; 16; 32 ] in
  let rows =
    List.map
      (fun width ->
        let w = Scenario.fanout ~width () in
        let r =
          Negotiation.request w.Scenario.cw_session
            ~requester:w.Scenario.cw_requester ~target:w.Scenario.cw_owner
            w.Scenario.cw_goal
        in
        [
          string_of_int width;
          outcome_str r;
          string_of_int r.Negotiation.messages;
          string_of_int r.Negotiation.disclosures;
          string_of_int r.Negotiation.elapsed;
        ])
      widths
  in
  print_table
    ~title:
      "E4  Policy fan-out scaling (width independent credentials; msgs = \
       2*width + 2)"
    ~header:[ "width"; "outcome"; "msgs"; "certs"; "ticks" ]
    rows

(* ------------------------------------------------------------------ *)
(* E5: strategy comparison *)

let e5 () =
  let configs = [ (2, 0); (4, 0); (4, 4); (4, 16) ] in
  let rows =
    List.concat_map
      (fun (depth, extra_creds) ->
        List.map
          (fun strategy ->
            let w = Scenario.policy_chain ~depth ~extra_creds () in
            let r =
              Strategy.negotiate w.Scenario.cw_session ~strategy
                ~requester:w.Scenario.cw_requester ~target:w.Scenario.cw_owner
                w.Scenario.cw_goal
            in
            [
              Printf.sprintf "depth %d, %d extra" depth extra_creds;
              Strategy.to_string strategy;
              outcome_str r;
              string_of_int r.Negotiation.messages;
              string_of_int r.Negotiation.bytes;
              string_of_int r.Negotiation.disclosures;
            ])
          Strategy.all)
      configs
  in
  print_table
    ~title:
      "E5  Strategy comparison (interoperable families; eager discloses \
       every unlocked credential, relevant only what is pulled)"
    ~header:[ "workload"; "strategy"; "outcome"; "msgs"; "bytes"; "certs" ]
    rows;
  (* n-party extension: a third peer holds the voucher the owner needs. *)
  let three_party () =
    let session = Session.create () in
    ignore
      (Session.add_peer session
         ~program:
           {|resource("r") $ voucher(Requester) @ "CA" <-{true} haveIt("r").
             haveIt("r").|}
         "owner");
    ignore (Session.add_peer session "alice");
    ignore
      (Session.add_peer session
         ~program:{|voucher("alice") @ "CA" $ true signedBy ["CA"].|}
         "carol");
    Engine.attach_all session;
    session
  in
  let goal = Dlp.Parser.parse_literal {|resource("r")|} in
  let two =
    let session = three_party () in
    Strategy.negotiate session ~strategy:Strategy.Eager ~requester:"alice"
      ~target:"owner" goal
  in
  let three =
    let session = three_party () in
    Strategy.negotiate_multi session ~participants:[ "alice"; "owner"; "carol" ]
      ~requester:"alice" ~target:"owner" goal
  in
  print_table
    ~title:
      "E5b n-party extension (§6): the needed voucher lives at a third \
       peer — 2-party eager fails, 3-party eager succeeds"
    ~header:[ "parties"; "outcome"; "msgs"; "certs" ]
    [
      [ "2 (alice, owner)"; outcome_str two;
        string_of_int two.Negotiation.messages;
        string_of_int two.Negotiation.disclosures ];
      [ "3 (+carol)"; outcome_str three;
        string_of_int three.Negotiation.messages;
        string_of_int three.Negotiation.disclosures ];
    ]

(* ------------------------------------------------------------------ *)
(* E6: credential chain discovery *)

let e6 () =
  let depths = [ 1; 2; 4; 8; 16; 32 ] in
  let rows =
    List.map
      (fun depth ->
        let session, root, _ =
          Chain.linear_world ~depth ~pred:"member" ~subject:"sam" ()
        in
        ignore (Session.add_peer session "client");
        Engine.attach_all session;
        let result =
          Chain.discover session ~requester:"client" ~root
            (Dlp.Parser.parse_literal {|member("sam")|})
        in
        [
          string_of_int depth;
          string_of_bool result.Chain.found;
          string_of_int (List.length result.Chain.chain);
          string_of_int result.Chain.report.Negotiation.messages;
          string_of_int result.Chain.report.Negotiation.elapsed;
        ])
      depths
  in
  print_table
    ~title:
      "E6  Distributed credential chain discovery (linear delegation; whole \
       chain relayed back to the requester)"
    ~header:[ "hops"; "found"; "chain certs"; "msgs"; "ticks" ]
    rows

(* ------------------------------------------------------------------ *)
(* E7: signature/crypto overhead *)

let e7 () =
  (* Raw primitive costs. *)
  let data = String.make 65536 'x' in
  let sha_t = time_median ~runs:7 (fun () -> ignore (Crypto.Sha256.digest data)) in
  let prng = Crypto.Prng.create 7L in
  let rows_prim = ref [] in
  List.iter
    (fun bits ->
      let kp = Crypto.Rsa.generate ~bits prng in
      let keygen_t =
        time_median ~runs:3 (fun () -> ignore (Crypto.Rsa.generate ~bits prng))
      in
      let sign_t = time_median ~runs:7 (fun () -> ignore (Crypto.Rsa.sign kp "message")) in
      let s = Crypto.Rsa.sign kp "message" in
      let verify_t =
        time_median ~runs:7 (fun () ->
            ignore (Crypto.Rsa.verify kp.Crypto.Rsa.public "message" s))
      in
      rows_prim :=
        [
          Printf.sprintf "RSA-%d" bits;
          fmt_ms keygen_t;
          fmt_ms sign_t;
          fmt_ms verify_t;
        ]
        :: !rows_prim)
    [ 320; 384; 512 ];
  print_table
    ~title:
      (Printf.sprintf
         "E7a Crypto primitives (SHA-256 of 64 KiB: %s ms -> %.1f MB/s)"
         (fmt_ms sha_t)
         (65536. /. 1048576. /. sha_t))
    ~header:[ "key"; "keygen ms"; "sign ms"; "verify ms" ]
    (List.rev !rows_prim);
  (* Negotiation with and without signature verification (ablation). *)
  let nego verify_signatures =
    let config = { Session.default_config with Session.verify_signatures } in
    time_median ~runs:5 (fun () ->
        let s = Scenario.scenario1 ~config () in
        ignore
          (Negotiation.request_str s.Scenario.s1_session ~requester:"Alice"
             ~target:"E-Learn" {|discountEnroll(spanish101, "Alice")|}))
  in
  let with_v = nego true and without_v = nego false in
  print_table
    ~title:"E7b Scenario-1 negotiation with/without certificate verification"
    ~header:[ "verification"; "ms / negotiation (incl setup)" ]
    [
      [ "on"; fmt_ms with_v ];
      [ "off"; fmt_ms without_v ];
    ]

(* ------------------------------------------------------------------ *)
(* E8: evaluation paradigms (forward vs backward chaining, §3.2) *)

let e8 () =
  let make_chain n =
    (* Transitive closure over a linear graph of n edges. *)
    let buf = Buffer.create 256 in
    Buffer.add_string buf "path(X, Y) <- edge(X, Y).\n";
    Buffer.add_string buf "path(X, Z) <- edge(X, Y), path(Y, Z).\n";
    for i = 1 to n do
      Buffer.add_string buf (Printf.sprintf "edge(%d, %d).\n" i (i + 1))
    done;
    Dlp.Kb.of_string (Buffer.contents buf)
  in
  let rows =
    List.map
      (fun n ->
        let kb = make_chain n in
        let fwd_t =
          time_median (fun () -> ignore (Dlp.Forward.saturate ~self:"p" kb))
        in
        let fwd = Dlp.Forward.saturate ~self:"p" kb in
        let goal = Dlp.Parser.parse_query (Printf.sprintf "path(1, %d)" (n + 1)) in
        let bwd_t =
          time_median (fun () ->
              ignore
                (Dlp.Sld.solve
                   ~options:
                   {
                     Dlp.Sld.default_options with
                     max_depth = (2 * n) + 8;
                     max_solutions = 1;
                   }
                   ~self:"p" kb goal))
        in
        let all_goal = Dlp.Parser.parse_query "path(1, X)" in
        let bwd_all_t =
          time_median (fun () ->
              ignore
                (Dlp.Sld.solve
                   ~options:
                   {
                     Dlp.Sld.default_options with
                     max_depth = (2 * n) + 8;
                     max_solutions = n + 4;
                   }
                   ~self:"p" kb all_goal))
        in
        let tabled_all_t =
          time_median (fun () ->
              ignore (Dlp.Tabled.solve ~self:"p" kb all_goal))
        in
        [
          string_of_int n;
          string_of_int (List.length fwd.Dlp.Forward.facts);
          fmt_ms fwd_t;
          fmt_ms bwd_t;
          fmt_ms bwd_all_t;
          fmt_ms tabled_all_t;
        ])
      [ 8; 16; 32; 64; 128 ]
  in
  print_table
    ~title:
      "E8  Push (forward fixpoint) vs pull (SLD) vs tabled on transitive \
       closure — backward wins for point queries, forward pays the full \
       fixpoint; the (naive, round-based) tabled engine buys completeness \
       on left recursion at a constant-factor cost"
    ~header:
      [ "edges"; "facts at fixpoint"; "forward ms"; "SLD point ms";
        "SLD all ms"; "tabled all ms" ]
    rows

(* ------------------------------------------------------------------ *)
(* E9: policy protection overhead *)

let e9 () =
  (* The same credential served (a) public, (b) guarded by one policy
     level, (c) guarded by a UniPro-style named policy whose definition is
     itself private (the paper's policy27 pattern). *)
  let build guard =
    let session = Session.create () in
    let owner_program =
      match guard with
      | `Public -> {|card("owner") @ "VISA" $ true signedBy ["VISA"].|}
      | `Guarded ->
          {|card("owner") @ "VISA" $ merchant(Requester) @ "CA" <-{true} card("owner") @ "VISA".
            card("owner") @ "VISA" signedBy ["VISA"].
            merchant(X) @ "CA" <- merchant(X) @ "CA" @ X.|}
      | `Named ->
          {|card("owner") @ "VISA" $ policy9(Requester) <-{true} card("owner") @ "VISA".
            card("owner") @ "VISA" signedBy ["VISA"].
            policy9(R) <- merchant(R) @ "CA", elenaMember(R) @ "CA".
            merchant(X) @ "CA" <- merchant(X) @ "CA" @ X.
            elenaMember(X) @ "CA" <- elenaMember(X) @ "CA" @ X.|}
    in
    ignore (Session.add_peer session ~program:owner_program "owner");
    ignore
      (Session.add_peer session
         ~program:
           {|merchant("shop") @ "CA" $ true signedBy ["CA"].
             elenaMember("shop") @ "CA" $ true signedBy ["CA"].|}
         "shop");
    session
  in
  let rows =
    List.map
      (fun (label, guard) ->
        let session = build guard in
        Engine.attach_all session;
        let r =
          Negotiation.request_str session ~requester:"shop" ~target:"owner"
            {|card(X) @ "VISA"|}
        in
        [
          label;
          outcome_str r;
          string_of_int r.Negotiation.messages;
          string_of_int r.Negotiation.bytes;
          string_of_int r.Negotiation.disclosures;
        ])
      [
        ("public credential", `Public);
        ("one-level guard", `Guarded);
        ("named policy (policy27 pattern)", `Named);
      ]
  in
  print_table
    ~title:
      "E9  Policy-protection overhead: the same credential behind \
       increasingly protective release policies"
    ~header:[ "protection"; "outcome"; "msgs"; "bytes"; "certs" ]
    rows

(* ------------------------------------------------------------------ *)
(* E10: failure detection and refusal *)

let e10 () =
  (* (a) Cost of concluding failure when the counter-party is unreachable,
     vs the cost of the successful run, as the chain deepens. *)
  let rows_a =
    List.map
      (fun depth ->
        let w = Scenario.policy_chain ~depth () in
        let r_ok =
          Negotiation.request w.Scenario.cw_session
            ~requester:w.Scenario.cw_requester ~target:w.Scenario.cw_owner
            w.Scenario.cw_goal
        in
        (* Fresh world with the requester unreachable for counter-queries. *)
        let w2 = Scenario.policy_chain ~depth () in
        Net.Network.set_down w2.Scenario.cw_session.Session.network
          w2.Scenario.cw_requester true;
        let r_fail =
          Negotiation.measure w2.Scenario.cw_session (fun () ->
              match
                Engine.query w2.Scenario.cw_session
                  ~requester:w2.Scenario.cw_requester
                  ~target:w2.Scenario.cw_owner w2.Scenario.cw_goal
              with
              | [] -> Negotiation.Denied "no"
              | i -> Negotiation.Granted i)
        in
        [
          string_of_int depth;
          string_of_int r_ok.Negotiation.messages;
          outcome_str r_fail;
          string_of_int r_fail.Negotiation.messages;
        ])
      [ 1; 2; 4; 8; 16 ]
  in
  print_table
    ~title:
      "E10a Refusal cost: successful chain vs requester unreachable for \
       counter-queries (failure detected in O(1) messages)"
    ~header:[ "depth"; "success msgs"; "outcome when down"; "failure msgs" ]
    rows_a;
  (* (b) Impossible negotiation: mutually locked credentials. *)
  let owner =
    {|a("o") $ b(Requester) @ "CA" <-{true} a("o").
      a("o") @ "CA" signedBy ["CA"].
      b(X) @ "CA" <- b(X) @ "CA" @ X.|}
  in
  let requester =
    {|b("req") $ a(Requester) @ "CA" <-{true} b("req").
      b("req") @ "CA" signedBy ["CA"].
      a(X) @ "CA" <- a(X) @ "CA" @ X.|}
  in
  let session = Session.create () in
  ignore (Session.add_peer session ~program:owner "owner");
  ignore (Session.add_peer session ~program:requester "req");
  Engine.attach_all session;
  let r =
    Negotiation.request_str session ~requester:"req" ~target:"owner" {|a("o")|}
  in
  print_table
    ~title:
      "E10b Deadlocked release policies (no safe disclosure sequence): the \
       cycle check terminates the negotiation"
    ~header:[ "outcome"; "msgs"; "ticks" ]
    [
      [
        outcome_str r;
        string_of_int r.Negotiation.messages;
        string_of_int r.Negotiation.elapsed;
      ];
    ]

(* ------------------------------------------------------------------ *)
(* E11: synchronous engine vs queued (reactor) engine *)

let e11 () =
  (* (a) Same chain workloads under both engines. *)
  let rows_a =
    List.map
      (fun depth ->
        let w1 = Scenario.policy_chain ~depth () in
        let sync =
          Negotiation.request w1.Scenario.cw_session ~requester:"alice"
            ~target:"bob" w1.Scenario.cw_goal
        in
        let w2 = Scenario.policy_chain ~depth () in
        let stats = Net.Network.stats w2.Scenario.cw_session.Session.network in
        let before = Net.Stats.messages stats in
        let reactor = Reactor.create w2.Scenario.cw_session in
        let id =
          Reactor.submit reactor ~requester:"alice" ~target:"bob"
            w2.Scenario.cw_goal
        in
        let steps = Reactor.run reactor in
        let queued_msgs = Net.Stats.messages stats - before in
        let ok =
          match Reactor.outcome reactor id with
          | Negotiation.Granted _ -> "granted"
          | Negotiation.Denied _ -> "denied"
        in
        [
          string_of_int depth;
          string_of_int sync.Negotiation.messages;
          string_of_int queued_msgs;
          string_of_int steps;
          ok;
        ])
      [ 1; 2; 4; 8; 16 ]
  in
  print_table
    ~title:
      "E11a Synchronous vs queued engine on policy chains (same outcomes; \
       the queue pays extra messages for re-evaluation fairness)"
    ~header:[ "depth"; "sync msgs"; "queued msgs"; "queue steps"; "outcome" ]
    rows_a;
  (* (b) k interleaved negotiations over one queue. *)
  let rows_b =
    List.map
      (fun k ->
        let w = Scenario.fanout ~width:4 () in
        let reactor = Reactor.create w.Scenario.cw_session in
        let ids =
          List.init k (fun _ ->
              Reactor.submit reactor ~requester:"alice" ~target:"bob"
                w.Scenario.cw_goal)
        in
        let steps = Reactor.run reactor in
        let all_ok =
          List.for_all
            (fun id ->
              match Reactor.outcome reactor id with
              | Negotiation.Granted _ -> true
              | Negotiation.Denied _ -> false)
            ids
        in
        [ string_of_int k; string_of_int steps; string_of_bool all_ok ])
      [ 1; 2; 4; 8 ]
  in
  print_table
    ~title:
      "E11b Interleaved negotiations over one queue (duplicate sub-queries \
       coalesce: steps grow sub-linearly in k)"
    ~header:[ "concurrent"; "queue steps"; "all granted" ]
    rows_b

(* ------------------------------------------------------------------ *)
(* E12: first-argument indexing ablation *)

let e12 () =
  let build indexing n =
    let buf = Buffer.create (n * 16) in
    Buffer.add_string buf "lookup(K, V) <- entry(K, V).\n";
    for i = 1 to n do
      Buffer.add_string buf (Printf.sprintf "entry(k%d, %d).\n" i i)
    done;
    Dlp.Kb.of_string ~indexing (Buffer.contents buf)
  in
  let query_time kb n =
    (* 200 point lookups spread over the key space. *)
    time_median ~runs:5 (fun () ->
        for q = 1 to 200 do
          let k = 1 + (q * 7 mod n) in
          ignore
            (Dlp.Sld.solve
               ~options:
               { Dlp.Sld.default_options with max_depth = 8; max_solutions = 1 }
               ~self:"p" kb
               (Dlp.Parser.parse_query (Printf.sprintf "lookup(k%d, V)" k)))
        done)
  in
  let rows =
    List.map
      (fun n ->
        let indexed = query_time (build true n) n in
        let linear = query_time (build false n) n in
        [
          string_of_int n;
          fmt_ms indexed;
          fmt_ms linear;
          Printf.sprintf "%.1fx" (linear /. indexed);
        ])
      [ 100; 400; 1600; 6400 ]
  in
  print_table
    ~title:
      "E12 First-argument indexing ablation: 200 point lookups over a \
       fact base of n entries (indexed stays flat, linear grows with n)"
    ~header:[ "facts"; "indexed ms"; "linear ms"; "speedup" ]
    rows

(* ------------------------------------------------------------------ *)
(* E13: marketplace throughput *)

let e13 () =
  let rows =
    List.map
      (fun (providers, learners) ->
        let mp =
          Scenario.marketplace ~providers ~learners ~courses_per_provider:4 ()
        in
        let session = mp.Scenario.mp_session in
        let stats = Net.Network.stats session.Session.network in
        let before = Net.Stats.messages stats in
        let t0 = Sys.time () in
        let granted =
          List.fold_left
            (fun acc (learner, provider, goal) ->
              let r =
                Negotiation.request session ~requester:learner ~target:provider
                  goal
              in
              if Negotiation.succeeded r then acc + 1 else acc)
            0 mp.Scenario.mp_goals
        in
        let dt = Sys.time () -. t0 in
        let total = List.length mp.Scenario.mp_goals in
        let msgs = Net.Stats.messages stats - before in
        [
          Printf.sprintf "%dx%d" providers learners;
          string_of_int total;
          string_of_int granted;
          string_of_int msgs;
          Printf.sprintf "%.2f" (float_of_int msgs /. float_of_int total);
          fmt_ms dt;
          Printf.sprintf "%.0f" (float_of_int total /. dt);
        ])
      [ (2, 2); (4, 4); (4, 16); (8, 16) ]
  in
  print_table
    ~title:
      "E13 Marketplace throughput (providers x learners; every learner \
       enrols at every provider; caching makes repeat negotiations \
       cheaper, so msgs/negotiation falls below the cold-start cost)"
    ~header:
      [ "size"; "negotiations"; "granted"; "msgs"; "msgs/nego"; "ms"; "nego/s" ]
    rows

(* ------------------------------------------------------------------ *)
(* chaos: resilience under randomized fault schedules *)

let chaos () =
  (* 100-seed sweep over scenario 1 with drops, duplicates, delays,
     reordering and periodic UIUC outages.  Every run must terminate with
     the fault-free outcome or a structured denial; the table breaks the
     outcomes down by denial class.  Small keys keep the sweep fast. *)
  let seeds = 100 in
  let max_steps = 20_000 in
  let tally = Hashtbl.create 8 in
  let bump k = Hashtbl.replace tally k (1 + Option.value ~default:0 (Hashtbl.find_opt tally k)) in
  let worst_steps = ref 0 in
  for seed = 1 to seeds do
    let s = Scenario.scenario1 ~key_bits:288 () in
    let session = s.Scenario.s1_session in
    let faults =
      Net.Faults.create ~drop:0.12 ~duplicate:0.1 ~delay:0.25 ~delay_max:4
        ~reorder:0.1 ~seed:(Int64.of_int seed) ()
    in
    if seed mod 3 = 0 then
      Net.Faults.add_outage faults ~peer:"UIUC" ~from_tick:3 ~until_tick:9;
    Net.Network.set_faults session.Session.network faults;
    let reactor = Reactor.create session in
    let id =
      Reactor.submit reactor ~requester:"Alice" ~target:"E-Learn"
        (Scenario.scenario1_goal ())
    in
    let steps = Reactor.run ~max_steps reactor in
    worst_steps := max !worst_steps steps;
    (match Reactor.outcome reactor id with
    | Negotiation.Granted _ -> bump "granted"
    | Negotiation.Denied reason ->
        bump
          ("denied: "
          ^ Negotiation.denial_class_to_string
              (Negotiation.classify_denial reason)))
  done;
  let rows =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally []
    |> List.sort compare
    |> List.map (fun (k, v) -> [ k; string_of_int v ])
  in
  print_table
    ~title:
      (Printf.sprintf
         "CHAOS Scenario-1 outcomes over %d fault seeds (drop 0.12, dup 0.1, \
          delay 0.25, reorder 0.1, UIUC outage every 3rd seed; worst run %d \
          steps)"
         seeds !worst_steps)
    ~header:[ "outcome"; "runs" ]
    rows;
  let snapshot = Pobs.Obs.snapshot () in
  let counters =
    [
      "net.drops"; "net.duplicates"; "net.delayed"; "reactor.retries";
      "reactor.timeouts"; "reactor.dup_deliveries"; "reactor.drops";
    ]
  in
  print_table ~title:"CHAOS fault-machinery counters across the sweep"
    ~header:[ "counter"; "total" ]
    (List.map
       (fun name ->
         [ name; string_of_int (Pobs.Registry.counter_value snapshot name) ])
       counters)

(* ------------------------------------------------------------------ *)
(* adversary: goodput under misbehaving peers, guards on *)

let adversary_smoke = ref false

let adversary_bench () =
  (* Scenario 1 with 0..4 seeded adversaries attached and the guard at
     its tuned defaults.  Hard assertions, not just tables: every honest
     negotiation must reach its fault-free outcome, every adversary
     running a flooding/malformed mix must end the run quarantined, and
     no honest peer may ever be quarantined.  The table reports the
     goodput cost of the abuse: worst event count and mean envelopes per
     run as the adversary count grows. *)
  let smoke = !adversary_smoke in
  let seeds = if smoke then 10 else 100 in
  let counts = if smoke then [ 0; 2 ] else [ 0; 1; 2; 4 ] in
  let max_steps = 40_000 in
  let mixes =
    [|
      [ Net.Adversary.Flood 12; Net.Adversary.Malformed 4 ];
      [
        Net.Adversary.Unsolicited 4; Net.Adversary.Forged_certs;
        Net.Adversary.Replay;
      ];
      [
        Net.Adversary.Oversized 65536; Net.Adversary.Bomb 40;
        Net.Adversary.Flood 6;
      ];
      [ Net.Adversary.Malformed 6; Net.Adversary.Replay; Net.Adversary.Bomb 24 ];
    |]
  in
  let config = { Session.default_config with Session.guard = Guard.defaults } in
  let fail fmt = Printf.ksprintf (fun m -> Printf.eprintf "adversary: %s\n" m; exit 1) fmt in
  let rows =
    List.map
      (fun n ->
        let worst = ref 0 and envelopes = ref 0 and quarantines = ref 0 in
        for seed = 1 to seeds do
          let s = Scenario.scenario1 ~config ~key_bits:288 () in
          let session = s.Scenario.s1_session in
          let reactor = Reactor.create session in
          let advs =
            List.init n (fun i ->
                Net.Adversary.create
                  ~seed:(Int64.of_int ((seed * 100) + i))
                  ~name:(Printf.sprintf "adv%d" i)
                  mixes.(i mod Array.length mixes))
          in
          List.iter (Reactor.add_adversary reactor) advs;
          let id =
            Reactor.submit reactor ~requester:"Alice" ~target:"E-Learn"
              (Scenario.scenario1_goal ())
          in
          let steps = Reactor.run ~max_steps reactor in
          if steps >= max_steps then
            fail "seed %d with %d adversaries hit the step budget" seed n;
          worst := max !worst steps;
          envelopes :=
            !envelopes
            + Net.Stats.messages (Net.Network.stats session.Session.network);
          (match Reactor.outcome reactor id with
          | Negotiation.Granted _ -> ()
          | Negotiation.Denied reason ->
              fail "seed %d with %d adversaries: honest negotiation denied (%s)"
                seed n reason);
          let offenders =
            List.sort_uniq compare
              (List.map snd (Guard.quarantined (Reactor.guard reactor)))
          in
          List.iter
            (fun from ->
              if not (List.exists (fun a -> Net.Adversary.name a = from) advs)
              then fail "seed %d: honest peer %s quarantined" seed from)
            offenders;
          List.iter
            (fun a ->
              let noisy =
                List.exists
                  (function
                    | Net.Adversary.Flood _ | Net.Adversary.Malformed _ -> true
                    | _ -> false)
                  (Net.Adversary.behaviors a)
              in
              if noisy && not (List.mem (Net.Adversary.name a) offenders) then
                fail "seed %d: %s escaped quarantine" seed
                  (Net.Adversary.name a))
            advs;
          quarantines := !quarantines + List.length offenders
        done;
        [
          string_of_int n;
          Printf.sprintf "%d/%d" seeds seeds;
          string_of_int !worst;
          string_of_int (!envelopes / seeds);
          string_of_int !quarantines;
        ])
      counts
  in
  print_table
    ~title:
      (Printf.sprintf
         "ADVERSARY Scenario-1 goodput over %d seeds per row (guards on, \
          behavior mixes cycling per adversary)"
         seeds)
    ~header:
      [ "adversaries"; "honest granted"; "worst steps"; "mean envelopes";
        "quarantines" ]
    rows;
  let snapshot = Pobs.Obs.snapshot () in
  print_table ~title:"ADVERSARY guard counters across the sweep"
    ~header:[ "counter"; "total" ]
    (List.map
       (fun name ->
         [ name; string_of_int (Pobs.Registry.counter_value snapshot name) ])
       [
         "guard.admitted"; "guard.rejected"; "guard.stale";
         "guard.quarantines"; "guard.recoveries"; "guard.malformed";
         "guard.oversized"; "guard.unsolicited"; "guard.bad_cert";
         "guard.rate_limited"; "guard.quota"; "guard.bomb";
         "adversary.actions"; "reactor.dedup_evictions";
       ])

(* ------------------------------------------------------------------ *)
(* crash: crash-stop recovery, journals on vs off *)

let crash_smoke = ref false

let crash_bench () =
  (* Scenario 1 under scheduled crash-stops: for each victim (the
     requester Alice and the responder E-Learn) and each journal mode
     ([ckpt] = per-peer write-ahead journals, [off] = no durability),
     sweep crash schedules mixing never-restarting crashes, mid-flight
     crash+restart, and post-settlement ("late") crashes.  Hard
     assertions: no run hits the step budget, no crash is ever
     misreported as a transport fault, and with journals on every
     crash+restart run must recover and re-grant the fault-free
     outcome with zero duplicate certificate learning.  A final block
     exercises request deadlines: a crashed counterparty plus a
     deadline produces Cancel withdrawals instead of a hang. *)
  let smoke = !crash_smoke in
  let runs = if smoke then 2 else 30 in
  let max_steps = 40_000 in
  let fail fmt =
    Printf.ksprintf (fun m -> Printf.eprintf "crash: %s\n" m; exit 1) fmt
  in
  let wallet_serials session name =
    let peer = Session.peer session name in
    Hashtbl.fold
      (fun _ (c : Crypto.Cert.t) acc -> c.Crypto.Cert.serial :: acc)
      peer.Peer.certs []
    |> List.sort compare
  in
  let fault_free_wallets =
    (* each peer's certificate wallet after one clean run — the
       durability target a journalled victim must recover to *)
    let s = Scenario.scenario1 ~key_bits:288 () in
    let session = s.Scenario.s1_session in
    let reactor = Reactor.create session in
    let id =
      Reactor.submit reactor ~requester:"Alice" ~target:"E-Learn"
        (Scenario.scenario1_goal ())
    in
    ignore (Reactor.run ~max_steps reactor);
    (match Reactor.outcome reactor id with
    | Negotiation.Granted _ -> ()
    | Negotiation.Denied r -> fail "fault-free scenario denied (%s)" r);
    List.map (fun n -> (n, wallet_serials session n)) [ "Alice"; "E-Learn" ]
  in
  let rows =
    List.concat_map
      (fun (mode, journal) ->
        List.map
          (fun victim ->
            let granted = ref 0 and crashed_denials = ref 0 in
            let transport_denials = ref 0 in
            let worst = ref 0 and envelopes = ref 0 in
            for i = 1 to runs do
              let s = Scenario.scenario1 ~key_bits:288 () in
              let session = s.Scenario.s1_session in
              let faults = Net.Faults.none () in
              (* run mix by i mod 5: 0 = crash forever, 1/3 = crash then
                 restart before the counterparties' retry budgets drain,
                 2 = restart only after they drain (exercising the
                 suspend-and-reissue path), 4 = crash long after
                 settlement (durability of a settled world) *)
              let sel = i mod 5 in
              let restarts = sel <> 0 in
              let late = sel = 4 in
              let at_tick = if late then 60 + i else 2 + (i mod 7) in
              let restart_tick =
                if not restarts then max_int
                else if sel = 2 then at_tick + 135 + (i mod 7)
                else at_tick + 12 + (i mod 9)
              in
              Net.Faults.add_crash faults ~peer:victim ~at_tick ~restart_tick;
              Net.Network.set_faults session.Session.network faults;
              let config = { Reactor.default_config with Reactor.journal } in
              let reactor = Reactor.create ~config session in
              let id =
                Reactor.submit reactor ~requester:"Alice" ~target:"E-Learn"
                  (Scenario.scenario1_goal ())
              in
              let steps = Reactor.run ~max_steps reactor in
              if steps >= max_steps then
                fail "%s/%s run %d hit the step budget" mode victim i;
              worst := max !worst steps;
              envelopes :=
                !envelopes
                + Net.Stats.messages
                    (Net.Network.stats session.Session.network);
              (match Reactor.outcome reactor id with
              | Negotiation.Granted _ -> incr granted
              | Negotiation.Denied reason -> (
                  match Negotiation.classify_denial reason with
                  | Negotiation.Crashed -> incr crashed_denials
                  | Negotiation.Unreachable | Negotiation.Timeout ->
                      incr transport_denials
                  | _ -> ()));
              if late && Reactor.outcome reactor id = Negotiation.Denied "peer crashed"
              then fail "%s/%s run %d: post-settlement crash undid the outcome"
                     mode victim i;
              if journal <> Reactor.Journal_off && restarts then begin
                (* durability: journal replay must bring the victim's
                   wallet back to exactly the fault-free certificate
                   set — no loss, and (replay learns through the
                   idempotent wallet, never the verifier) no
                   duplicates *)
                (match Reactor.outcome reactor id with
                | Negotiation.Granted _ -> ()
                | Negotiation.Denied reason ->
                    fail "%s/%s run %d failed to recover (%s)" mode victim i
                      reason);
                let expected = List.assoc victim fault_free_wallets in
                let got = wallet_serials session victim in
                if got <> expected then
                  fail
                    "%s/%s run %d: recovered wallet %s != fault-free %s" mode
                    victim i
                    (String.concat "," (List.map string_of_int got))
                    (String.concat "," (List.map string_of_int expected))
              end
            done;
            if !transport_denials > 0 then
              fail "%s/%s: %d crash(es) misreported as transport faults" mode
                victim !transport_denials;
            let g label v =
              Pobs.Metric.set
                (Pobs.Obs.gauge
                   (Printf.sprintf "crash.%s.%s.%s" mode victim label))
                (float_of_int v)
            in
            g "granted" !granted;
            g "crashed_denials" !crashed_denials;
            g "transport_denials" !transport_denials;
            g "worst_steps" !worst;
            g "envelopes" (!envelopes / runs);
            [
              mode; victim;
              Printf.sprintf "%d/%d" !granted runs;
              string_of_int !crashed_denials;
              string_of_int !worst;
              string_of_int (!envelopes / runs);
            ])
          [ "Alice"; "E-Learn" ])
      [ ("ckpt", Reactor.Journal_memory); ("off", Reactor.Journal_off) ]
  in
  (* deadline block: a never-restarting crash plus a request deadline
     must settle as a policy-class denial and withdraw the in-flight
     sub-queries with Cancels, long before the retry budget drains *)
  let deadline_runs = if smoke then 2 else 4 in
  for i = 1 to deadline_runs do
    let s = Scenario.scenario1 ~key_bits:288 () in
    let session = s.Scenario.s1_session in
    (* odd runs kill the responder (the Cancels die in transit with
       it); even runs leave everyone alive but set a deadline tighter
       than the negotiation latency, so the Cancel reaches the live
       responder and withdraws its parked goal *)
    let deadline =
      let faults = Net.Faults.none () in
      let deadline =
        if i mod 2 = 1 then begin
          Net.Faults.add_crash faults ~peer:"E-Learn" ~at_tick:(2 + i)
            ~restart_tick:max_int;
          20 + (4 * i)
        end
        else begin
          (* a far-future bystander crash keeps the fault plan active
             (arming retransmission timers) without touching the flow *)
          Net.Faults.add_crash faults ~peer:"ELENA" ~at_tick:200
            ~restart_tick:max_int;
          4 + i
        end
      in
      Net.Network.set_faults session.Session.network faults;
      deadline
    in
    let reactor = Reactor.create session in
    let id =
      Reactor.submit ~deadline reactor ~requester:"Alice" ~target:"E-Learn"
        (Scenario.scenario1_goal ())
    in
    let steps = Reactor.run ~max_steps reactor in
    if steps >= max_steps then fail "deadline run %d hit the step budget" i;
    match Reactor.outcome reactor id with
    | Negotiation.Denied "deadline expired" -> ()
    | Negotiation.Denied other ->
        fail "deadline run %d denied as %S, not the deadline" i other
    | Negotiation.Granted _ ->
        fail "deadline run %d granted against a crashed responder" i
  done;
  print_table
    ~title:
      (Printf.sprintf
         "CRASH Scenario-1 outcomes over %d crash schedules per cell \
          (victim crashes mid-flight; 3/5 of schedules restart it; ckpt = \
          write-ahead journal replayed at restart) plus %d deadline runs"
         runs deadline_runs)
    ~header:
      [ "journal"; "victim"; "granted"; "crashed"; "worst steps";
        "mean envelopes" ]
    rows;
  let snapshot = Pobs.Obs.snapshot () in
  print_table ~title:"CRASH recovery counters across the sweep"
    ~header:[ "counter"; "total" ]
    (List.map
       (fun name ->
         [ name; string_of_int (Pobs.Registry.counter_value snapshot name) ])
       [
         "reactor.crashes"; "reactor.restarts"; "reactor.checkpoints";
         "reactor.recovered_goals"; "reactor.reissued_subqueries";
         "reactor.stale_epoch"; "reactor.crash_drops"; "reactor.cancels";
         "reactor.cancelled_goals"; "reactor.deadline_expiries";
         "reactor.timeouts"; "reactor.retries";
       ])

(* ------------------------------------------------------------------ *)
(* cache: cross-negotiation answer cache, cold vs warm *)

let cache_bench () =
  (* Each scenario runs three times on fresh sessions: once without a
     cache (baseline), once with an empty shared cache (cold), and once
     more reusing that cache (warm).  Sessions are rebuilt from the same
     deterministic keystore seed, so certificates replayed out of the
     cache still verify in the fresh session. *)
  let run ?config ~session goals =
    let stats = Net.Network.stats session.Session.network in
    let before = Net.Stats.messages stats in
    let reactor = Reactor.create ?config session in
    let ids =
      List.map
        (fun (req, tgt, goal) ->
          Reactor.submit reactor ~requester:req ~target:tgt goal)
        goals
    in
    ignore (Reactor.run reactor);
    let ok =
      List.for_all
        (fun id ->
          match Reactor.outcome reactor id with
          | Negotiation.Granted _ -> true
          | Negotiation.Denied _ -> false)
        ids
    in
    ( ok,
      Net.Stats.messages stats - before,
      Net.Clock.now (Net.Network.clock session.Session.network) )
  in
  let scenarios =
    [
      ( "s1",
        fun () ->
          let s = Scenario.scenario1 ~key_bits:288 () in
          ( s.Scenario.s1_session,
            [ ("Alice", "E-Learn", Scenario.scenario1_goal ()) ] ) );
      ( "s2",
        fun () ->
          let s = Scenario.scenario2 ~key_bits:288 () in
          ( s.Scenario.s2_session,
            [
              ("Bob", "E-Learn", Scenario.scenario2_goal_free ());
              ("Bob", "E-Learn", Scenario.scenario2_goal_paid ());
            ] ) );
    ]
  in
  let rows =
    List.concat_map
      (fun (name, build) ->
        let session, goals = build () in
        let ok_off, msgs_off, ticks_off = run ~session goals in
        let cache = Answer_cache.create () in
        let config =
          { Reactor.default_config with Reactor.cache = Some cache }
        in
        let s_cold, goals_cold = build () in
        let ok_cold, msgs_cold, ticks_cold =
          run ~config ~session:s_cold goals_cold
        in
        let hits_cold = Answer_cache.hits cache in
        let s_warm, goals_warm = build () in
        let ok_warm, msgs_warm, ticks_warm =
          run ~config ~session:s_warm goals_warm
        in
        let hits_warm = Answer_cache.hits cache - hits_cold in
        let g key v =
          Pobs.Metric.set
            (Pobs.Obs.gauge (Printf.sprintf "cache.%s.%s" name key))
            (float_of_int v)
        in
        g "off_envelopes" msgs_off;
        g "cold_envelopes" msgs_cold;
        g "warm_envelopes" msgs_warm;
        g "off_ticks" ticks_off;
        g "cold_ticks" ticks_cold;
        g "warm_ticks" ticks_warm;
        let row mode ok msgs ticks hits =
          [
            name; mode;
            (if ok then "granted" else "denied");
            string_of_int msgs; string_of_int ticks; string_of_int hits;
          ]
        in
        [
          row "no cache" ok_off msgs_off ticks_off 0;
          row "cold" ok_cold msgs_cold ticks_cold hits_cold;
          row "warm" ok_warm msgs_warm ticks_warm hits_warm;
        ])
      scenarios
  in
  print_table
    ~title:
      "CACHE Cross-negotiation answer cache: the same scenario negotiated \
       on a fresh session with a shared cache — warm runs answer from the \
       cache and post (almost) no envelopes"
    ~header:[ "scenario"; "mode"; "outcome"; "envelopes"; "ticks"; "hits" ]
    rows

(* ------------------------------------------------------------------ *)
(* RESOLUTION: resolution-core workloads.

   Scaled workloads that bottom out in the lib/dlp term layer: deep
   delegation-style rule chains, wide ground KBs (exercising
   first-argument indexing and full scans), million-fact ground KBs
   (point lookups and rule-mediated hops against the hash-consed
   first-argument index), long negotiation sessions on a warm session,
   and tabled transitive closure.  Each workload reports median wall time
   and words allocated per run; the numbers land in BENCH_resolution.json
   as gauges ([resolution.<workload>.ms] and
   [resolution.<workload>.kwords]).  With [--smoke], sizes shrink and each
   SLD workload's answer set is checked against a map-based reference
   resolution engine (substitution maps, rename-apart via substitution),
   guarding the trailed core against answer drift.  [--kb-size N]
   overrides the fact count of the ground-KB workloads (honoured with and
   without [--smoke]). *)

let resolution_smoke = ref false
let resolution_kb_size : int option ref = ref None

(* Map-based reference resolution engine: persistent substitution maps and
   rename-apart rules, no binding trail — the pre-interning algorithm kept
   as an answer-set oracle for the trailed core.  Pure Datalog (no
   externals, remotes, or NAF): exactly what the resolution workloads
   exercise. *)
module Ref_sld = struct
  let answers ~max_depth ~self kb goals =
    let initial = Dlp.Subst.bind "Self" (Dlp.Term.str self) Dlp.Subst.empty in
    let results = ref [] in
    let rec prove goal subst depth k =
      if depth <= 0 then ()
      else
        let goal = Dlp.Literal.apply subst goal in
        match Dlp.Builtin.eval goal subst with
        | Some substs -> List.iter k substs
        | None ->
            List.iter
              (fun rule ->
                let r = Dlp.Rule.rename_apart rule in
                match Dlp.Literal.unify goal r.Dlp.Rule.head subst with
                | None -> ()
                | Some s' -> prove_all r.Dlp.Rule.body s' (depth - 1) k)
              (Dlp.Kb.matching goal kb)
    and prove_all goals subst depth k =
      match goals with
      | [] -> k subst
      | g :: rest -> prove g subst depth (fun s' -> prove_all rest s' depth k)
    in
    let qvars =
      List.concat_map Dlp.Literal.vars goals
      |> List.filter (fun v -> not (Dlp.Term.is_pseudo v))
    in
    prove_all goals initial max_depth (fun s ->
        results := Dlp.Subst.restrict qvars s :: !results);
    let seen = Hashtbl.create 64 in
    List.rev !results
    |> List.filter (fun s ->
           let key = Dlp.Subst.to_string s in
           if Hashtbl.mem seen key then false
           else begin
             Hashtbl.add seen key ();
             true
           end)
end

let kb_of_buf f =
  let buf = Buffer.create 4096 in
  f buf;
  Dlp.Kb.of_string (Buffer.contents buf)

(* l0(X) <- l1(X). ... l(d-1)(X) <- ld(X).  ld(leaf). *)
let deep_chain_kb depth =
  kb_of_buf (fun buf ->
      for i = 0 to depth - 1 do
        Printf.bprintf buf "l%d(X) <- l%d(X).\n" i (i + 1)
      done;
      Printf.bprintf buf "l%d(leaf).\n" depth)

let transitive_kb n =
  kb_of_buf (fun buf ->
      Buffer.add_string buf
        "path(X, Y) <- edge(X, Y).\npath(X, Z) <- edge(X, Y), path(Y, Z).\n";
      for i = 1 to n do
        Printf.bprintf buf "edge(n%d, n%d).\n" i (i + 1)
      done)

let wide_kb n =
  kb_of_buf (fun buf ->
      for i = 1 to n do
        Printf.bprintf buf "item(c%d, %d).\n" i i
      done;
      Buffer.add_string buf "lookup(K, V) <- item(K, V).\n")

(* Million-scale KBs are built through the constructor API: parsing a
   million-line program would dominate setup.  Insertion is indexed
   ({!Dlp.Kb.mem} consults the first-argument index), so bulk build is
   O(n log n). *)
let ground_kb n =
  let rec go i kb =
    if i > n then kb
    else
      let lit =
        Dlp.Literal.make "fact" [ Dlp.Term.atom ("c" ^ string_of_int i); Dlp.Term.Int i ]
      in
      go (i + 1) (Dlp.Kb.add (Dlp.Rule.fact lit) kb)
  in
  go 1 Dlp.Kb.empty

let edge_kb n =
  let node i = Dlp.Term.atom ("n" ^ string_of_int i) in
  let rec go i kb =
    if i > n then kb
    else
      go (i + 1)
        (Dlp.Kb.add (Dlp.Rule.fact (Dlp.Literal.make "edge" [ node i; node (i + 1) ])) kb)
  in
  let hop =
    (* hop2(X, Z) <- edge(X, Y), edge(Y, Z). *)
    let v n = Dlp.Term.var n in
    Dlp.Rule.make
      (Dlp.Literal.make "hop2" [ v "X"; v "Z" ])
      [
        Dlp.Literal.make "edge" [ v "X"; v "Y" ];
        Dlp.Literal.make "edge" [ v "Y"; v "Z" ];
      ]
  in
  go 1 (Dlp.Kb.add hop Dlp.Kb.empty)

(* Median wall time and mean words allocated of [runs] executions. *)
let time_alloc ?(runs = 5) f =
  let before = Gc.allocated_bytes () in
  let samples =
    List.init runs (fun _ ->
        let t0 = Unix.gettimeofday () in
        f ();
        Unix.gettimeofday () -. t0)
  in
  let words =
    (Gc.allocated_bytes () -. before)
    /. float_of_int runs
    /. float_of_int (Sys.word_size / 8)
  in
  let sorted = List.sort compare samples in
  (List.nth sorted (List.length sorted / 2), words)

(* Answer sets as a sorted list of printed substitutions: the comparison
   key for the engine-vs-reference differential. *)
let answer_key answers =
  List.sort compare (List.map Dlp.Subst.to_string answers)

let resolution () =
  let smoke = !resolution_smoke in
  let scale full small = if smoke then small else full in
  (* Fact count of the ground-KB workloads; [--kb-size] overrides both the
     full and the smoke default. *)
  let kb_n full small =
    match !resolution_kb_size with Some n -> n | None -> scale full small
  in
  let sld_answers ?(max_solutions = 100_000) ~max_depth kb goals =
    Dlp.Sld.answers
      ~options:{ Dlp.Sld.default_options with max_depth; max_solutions }
      ~self:"bench" kb goals
  in
  let check_differential = ref [] in
  (* Each workload is a thunk: KBs are built when the workload runs and
     become garbage right after its row (a million-fact KB per workload —
     building them all up front would hold them simultaneously). *)
  let workloads =
    [
      ( "deep_chain",
        fun () ->
          let depth = scale 1500 120 in
          let kb = deep_chain_kb depth in
          let goals = Dlp.Parser.parse_query "l0(X)" in
          let max_depth = depth + 16 in
          ( (fun () ->
              ignore (sld_answers ~max_solutions:4 ~max_depth kb goals)),
            Some (kb, goals, max_depth) ) );
      ( "deep_chain_xl",
        fun () ->
          let depth = scale 6_000 300 in
          let kb = deep_chain_kb depth in
          let goals = Dlp.Parser.parse_query "l0(X)" in
          let max_depth = depth + 16 in
          ( (fun () ->
              ignore (sld_answers ~max_solutions:4 ~max_depth kb goals)),
            Some (kb, goals, max_depth) ) );
      ( "transitive",
        fun () ->
          let n = scale 48 12 in
          let kb = transitive_kb n in
          let goals = Dlp.Parser.parse_query "path(X, Y)" in
          let max_depth = (2 * n) + 8 in
          ( (fun () -> ignore (sld_answers ~max_depth kb goals)),
            Some (kb, goals, max_depth) ) );
      ( "wide_indexed",
        fun () ->
          let n = kb_n 10_000 1_000 in
          let kb = wide_kb n in
          let goals =
            Dlp.Parser.parse_query (Printf.sprintf "lookup(c%d, V)" (n - 13))
          in
          ( (fun () ->
              for _ = 1 to scale 300 20 do
                ignore (sld_answers ~max_solutions:4 ~max_depth:8 kb goals)
              done),
            Some (kb, goals, 8) ) );
      ( "wide_scan",
        fun () ->
          let n = kb_n 10_000 1_000 in
          let kb = wide_kb n in
          let goals = Dlp.Parser.parse_query "item(K, V)" in
          ( (fun () -> ignore (sld_answers ~max_depth:4 kb goals)), None ) );
      ( "wide_scan_xl",
        fun () ->
          let n = kb_n 200_000 5_000 in
          let kb = wide_kb n in
          let goals = Dlp.Parser.parse_query "item(K, V)" in
          ( (fun () -> ignore (sld_answers ~max_depth:4 kb goals)), None ) );
      ( "ground_lookup",
        fun () ->
          let n = kb_n 1_000_000 20_000 in
          let kb = ground_kb n in
          let queries = scale 2_000 200 in
          let vV = Dlp.Term.var "V" in
          let goal_at k =
            [ Dlp.Literal.make "fact" [ Dlp.Term.atom ("c" ^ string_of_int k); vV ] ]
          in
          ( (fun () ->
              for j = 1 to queries do
                (* Deterministic stride spreads the probes over the KB. *)
                let k = 1 + (j * 7919 mod n) in
                ignore (sld_answers ~max_solutions:4 ~max_depth:8 kb (goal_at k))
              done),
            Some (kb, goal_at (1 + (n / 2)), 8) ) );
      ( "indexed_million",
        fun () ->
          let n = kb_n 1_000_000 20_000 in
          let kb = edge_kb n in
          let queries = scale 1_000 100 in
          let vZ = Dlp.Term.var "Z" in
          let goal_at k =
            [
              Dlp.Literal.make "hop2"
                [ Dlp.Term.atom ("n" ^ string_of_int k); vZ ];
            ]
          in
          ( (fun () ->
              for j = 1 to queries do
                let k = 1 + (j * 7919 mod (n - 1)) in
                ignore (sld_answers ~max_solutions:4 ~max_depth:8 kb (goal_at k))
              done),
            Some (kb, goal_at (1 + (n / 2)), 8) ) );
      ( "negotiation_session",
        fun () ->
          let w = Scenario.scenario1 () in
          let goal = {|discountEnroll(spanish101, "Alice")|} in
          ( (fun () ->
              for _ = 1 to scale 30 3 do
                ignore
                  (Negotiation.request_str w.Scenario.s1_session
                     ~requester:"Alice" ~target:"E-Learn" goal)
              done),
            None ) );
      ( "tabled_transitive",
        fun () ->
          let n = scale 28 10 in
          let kb = transitive_kb n in
          let goals = Dlp.Parser.parse_query "path(X, Y)" in
          ( (fun () -> ignore (Dlp.Tabled.solve ~self:"bench" kb goals)), None )
      );
    ]
  in
  let rows =
    List.map
      (fun (name, mk) ->
        let run, differential = mk () in
        run () (* warm-up, and interner/caches settle *);
        let runs = if smoke then 1 else 5 in
        let ms, words = time_alloc ~runs run in
        Pobs.Metric.set
          (Pobs.Obs.gauge ("resolution." ^ name ^ ".ms"))
          (ms *. 1000.);
        Pobs.Metric.set
          (Pobs.Obs.gauge ("resolution." ^ name ^ ".kwords"))
          (words /. 1000.);
        (* Differential references are only retained in smoke mode (full
           mode would keep every million-fact KB alive to the end). *)
        if smoke then
          Option.iter
            (fun d -> check_differential := (name, d) :: !check_differential)
            differential;
        [
          name;
          fmt_ms ms;
          Printf.sprintf "%.0f" (words /. 1000.);
          (if differential = None then "-" else "yes");
        ])
      workloads
  in
  print_table
    ~title:
      "RESOLUTION  Resolution-core workloads (deep chains, wide KBs, \
       negotiation sessions)"
    ~header:[ "workload"; "ms/run"; "kwords/run"; "differential" ]
    rows;
  (* Differential gate: the engine's answers on each SLD workload must
     match the map-based reference resolution engine. *)
  if smoke then
    List.iter
      (fun (name, (kb, goals, max_depth)) ->
        let engine =
          answer_key
            (sld_answers ~max_solutions:100_000 ~max_depth kb goals)
        in
        let reference =
          answer_key (Ref_sld.answers ~max_depth ~self:"bench" kb goals)
        in
        if engine <> reference then begin
          Printf.eprintf
            "resolution --smoke: differential MISMATCH on %s (%d engine vs \
             %d reference answers)\n"
            name (List.length engine) (List.length reference);
          exit 1
        end
        else Printf.printf "  differential ok: %s (%d answers)\n" name
          (List.length engine))
      !check_differential

(* ------------------------------------------------------------------ *)
(* RECURSION: distributed tabling over cyclic cross-peer policies.

   Mutual-accreditation rings and chained federations — the workloads
   the plain engines cannot terminate on — evaluated through the
   reactor's distributed tabling engine.  Emits gauges
   [recursion.<workload>.ms], [recursion.<workload>.steps] and
   [recursion.<workload>.messages] into BENCH_recursion.json; every run
   is checked for the complete expected answer set, so the benchmark
   doubles as a termination/completeness gate. *)

let recursion_smoke = ref false

let recursion () =
  let smoke = !recursion_smoke in
  let scale full small = if smoke then small else full in
  let run_world mk =
    (* A reactor is a single-shot state machine over its session: build
       a fresh world per run so repeats measure the same work. *)
    let rw = mk () in
    let session = rw.Scenario.rw_session in
    let config = { Reactor.default_config with Reactor.tabling = true } in
    let reactor = Reactor.create ~config session in
    let id =
      Reactor.submit reactor ~requester:rw.Scenario.rw_requester
        ~target:rw.Scenario.rw_target rw.Scenario.rw_goal
    in
    let steps = Reactor.run reactor in
    let messages =
      Net.Stats.messages (Net.Network.stats session.Session.network)
    in
    let complete =
      match Reactor.outcome reactor id with
      | Negotiation.Granted instances ->
          List.sort_uniq compare
            (List.map (fun (l, _) -> Dlp.Literal.to_string l) instances)
          = List.sort_uniq compare
              (List.map Dlp.Literal.to_string rw.Scenario.rw_expected)
      | Negotiation.Denied _ -> false
    in
    (steps, messages, complete)
  in
  let workloads =
    [
      ( "mutual_pair",
        fun () -> Scenario.mutual_accreditation ~n:2 () );
      ( "accreditation_ring",
        let n = scale 8 4 in
        fun () -> Scenario.mutual_accreditation ~n () );
      ( "federation",
        let clusters = scale 4 2 and size = scale 3 2 in
        fun () -> Scenario.federation ~clusters ~size () );
    ]
  in
  let rows =
    List.map
      (fun (name, mk) ->
        ignore (run_world mk) (* warm-up: interner/caches settle *);
        let last = ref (0, 0, false) in
        let runs = if smoke then 1 else 5 in
        let ms, _ = time_alloc ~runs (fun () -> last := run_world mk) in
        let steps, messages, complete = !last in
        if not complete then begin
          Printf.eprintf
            "recursion: %s terminated WITHOUT the complete answer set\n" name;
          exit 1
        end;
        Pobs.Metric.set
          (Pobs.Obs.gauge ("recursion." ^ name ^ ".ms"))
          (ms *. 1000.);
        Pobs.Metric.set
          (Pobs.Obs.gauge ("recursion." ^ name ^ ".steps"))
          (float_of_int steps);
        Pobs.Metric.set
          (Pobs.Obs.gauge ("recursion." ^ name ^ ".messages"))
          (float_of_int messages);
        [ name; fmt_ms ms; string_of_int steps; string_of_int messages ])
      workloads
  in
  print_table
    ~title:
      "RECURSION  Distributed tabling over cyclic policies \
       (mutual-accreditation rings, federations)"
    ~header:[ "workload"; "ms/run"; "steps"; "messages" ]
    rows

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks *)

let micro () =
  let open Bechamel in
  let kb_tc =
    Dlp.Kb.of_string
      "path(X, Y) <- edge(X, Y). path(X, Z) <- edge(X, Y), path(Y, Z).\n\
       edge(1, 2). edge(2, 3). edge(3, 4). edge(4, 5). edge(5, 6)."
  in
  let goal_tc = Dlp.Parser.parse_query "path(1, 6)" in
  let prng = Crypto.Prng.create 3L in
  let kp = Crypto.Rsa.generate ~bits:320 prng in
  let signature = Crypto.Rsa.sign kp "payload" in
  let warm = Scenario.scenario1 () in
  ignore
    (Negotiation.request_str warm.Scenario.s1_session ~requester:"Alice"
       ~target:"E-Learn" {|discountEnroll(spanish101, "Alice")|});
  let tests =
    [
      Test.make ~name:"parse rule"
        (Staged.stage (fun () ->
             Dlp.Parser.parse_rule
               {|policy49(C, R, Co, P) <-{true} price(C, P), authorized(R, P) @ Co @ R, visaCard(Co) @ "VISA" @ R.|}));
      Test.make ~name:"unify deep terms"
        (Staged.stage
           (let a = Dlp.Parser.parse_term "f(g(X, h(Y, 1)), i(Z, j(2, W)))" in
            let b = Dlp.Parser.parse_term {|f(g(a, h(b, 1)), i("c", j(2, d)))|} in
            fun () -> ignore (Dlp.Unify.terms a b Dlp.Subst.empty)));
      Test.make ~name:"sld transitive closure"
        (Staged.stage (fun () ->
             ignore (Dlp.Sld.solve ~self:"p" kb_tc goal_tc)));
      Test.make ~name:"forward saturate"
        (Staged.stage (fun () ->
             ignore (Dlp.Forward.saturate ~self:"p" kb_tc)));
      Test.make ~name:"sha256 1KiB"
        (Staged.stage
           (let data = String.make 1024 'a' in
            fun () -> ignore (Crypto.Sha256.digest data)));
      Test.make ~name:"rsa-320 sign"
        (Staged.stage (fun () -> ignore (Crypto.Rsa.sign kp "payload")));
      Test.make ~name:"rsa-320 verify"
        (Staged.stage (fun () ->
             ignore (Crypto.Rsa.verify kp.Crypto.Rsa.public "payload" signature)));
      Test.make ~name:"negotiation (warm cache)"
        (Staged.stage (fun () ->
             ignore
               (Negotiation.request_str warm.Scenario.s1_session
                  ~requester:"Alice" ~target:"E-Learn"
                  {|discountEnroll(spanish101, "Alice")|})));
    ]
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) () in
  let raw =
    Benchmark.all cfg [ instance ]
      (Test.make_grouped ~name:"peertrust" ~fmt:"%s %s" tests)
  in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> e
        | Some [] | None -> nan
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with Some r -> r | None -> nan
      in
      rows := (name, est, r2) :: !rows)
    results;
  let rows =
    List.sort compare !rows
    |> List.map (fun (name, est, r2) ->
           [ name; Printf.sprintf "%.0f" est; Printf.sprintf "%.4f" r2 ])
  in
  print_table ~title:"Micro-benchmarks (Bechamel, monotonic clock)"
    ~header:[ "benchmark"; "ns/run"; "r^2" ]
    rows

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5);
    ("e6", e6); ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10);
    ("e11", e11); ("e12", e12); ("e13", e13); ("cache", cache_bench);
    ("chaos", chaos); ("resolution", resolution);
    ("recursion", recursion); ("adversary", adversary_bench);
    ("crash", crash_bench);
  ]

(* ------------------------------------------------------------------ *)
(* diff: regression gate over BENCH_*.json snapshots *)

let read_snapshot file =
  let text =
    try
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  in
  match Pobs.Export.metrics_of_string text with
  | Ok snapshot -> snapshot
  | Error msg ->
      Printf.eprintf "error: %s: %s\n" file msg;
      exit 1

(* Multiply every fresh value by [r] — the gate's self-test: a simulated
   uniform slowdown the diff must catch. *)
let inflate_snapshot r (s : Pobs.Registry.snapshot) =
  let scale_hist (h : Pobs.Metric.histogram_snapshot) =
    {
      h with
      Pobs.Metric.hs_sum = h.Pobs.Metric.hs_sum *. r;
      hs_min = h.Pobs.Metric.hs_min *. r;
      hs_max = h.Pobs.Metric.hs_max *. r;
    }
  in
  {
    Pobs.Registry.sn_counters =
      List.map
        (fun (n, v) -> (n, int_of_float (Float.of_int v *. r)))
        s.Pobs.Registry.sn_counters;
    sn_gauges = List.map (fun (n, v) -> (n, v *. r)) s.Pobs.Registry.sn_gauges;
    sn_histograms =
      List.map (fun (n, h) -> (n, scale_hist h)) s.Pobs.Registry.sn_histograms;
  }

let diff_usage () =
  prerr_endline
    "usage: bench diff [--baseline FILE | --against-seed NAME] [--tolerance \
     R] [--inflate R] [--json] FRESH.json";
  exit 2

let run_diff rest =
  let baseline = ref None in
  let against_seed = ref None in
  let tolerance = ref None in
  let inflate = ref None in
  let json = ref false in
  let fresh_file = ref None in
  let float_arg flag v =
    match float_of_string_opt v with
    | Some f when f > 0. -> f
    | Some _ | None ->
        Printf.eprintf "error: %s expects a positive number, got %S\n" flag v;
        exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--baseline" :: file :: rest ->
        baseline := Some file;
        parse rest
    | "--against-seed" :: name :: rest ->
        against_seed := Some name;
        parse rest
    | "--tolerance" :: r :: rest ->
        tolerance := Some (float_arg "--tolerance" r);
        parse rest
    | "--inflate" :: r :: rest ->
        inflate := Some (float_arg "--inflate" r);
        parse rest
    | "--json" :: rest ->
        json := true;
        parse rest
    | file :: rest when !fresh_file = None && String.length file > 0
                       && file.[0] <> '-' ->
        fresh_file := Some file;
        parse rest
    | arg :: _ ->
        Printf.eprintf "error: bench diff: unexpected argument %S\n" arg;
        diff_usage ()
  in
  parse rest;
  let fresh_file =
    match !fresh_file with Some f -> f | None -> diff_usage ()
  in
  let baseline_file =
    match (!baseline, !against_seed) with
    | Some file, None -> file
    | None, Some name ->
        (* Prefer a committed seed baseline; fall back to the plain
           artifact for ad-hoc before/after comparisons. *)
        let seed = Printf.sprintf "BENCH_%s_seed.json" name in
        if Sys.file_exists seed then seed
        else Printf.sprintf "BENCH_%s.json" name
    | Some _, Some _ ->
        prerr_endline "error: --baseline and --against-seed are exclusive";
        exit 2
    | None, None -> diff_usage ()
  in
  let baseline = read_snapshot baseline_file in
  let fresh = read_snapshot fresh_file in
  let fresh =
    match !inflate with None -> fresh | Some r -> inflate_snapshot r fresh
  in
  let spec =
    match !tolerance with
    | None -> Pobs.Diff.default_spec
    | Some tol_ratio ->
        {
          Pobs.Diff.default_spec with
          Pobs.Diff.sp_default =
            { Pobs.Diff.default_tolerance with Pobs.Diff.tol_ratio };
          sp_timing = { Pobs.Diff.timing_tolerance with Pobs.Diff.tol_ratio };
        }
  in
  let report = Pobs.Diff.compare_snapshots ~spec ~baseline ~fresh () in
  if !json then
    print_endline (Pobs.Json.to_string (Pobs.Diff.report_to_json report))
  else begin
    Printf.printf "bench diff: %s (baseline) vs %s (fresh)%s\n" baseline_file
      fresh_file
      (match !inflate with
      | Some r -> Printf.sprintf " [fresh inflated x%g]" r
      | None -> "");
    Format.printf "%a@." Pobs.Diff.pp_report report
  end;
  exit (if report.Pobs.Diff.r_ok then 0 else 1)

(* Run one experiment with a fresh metrics registry and drop the snapshot
   as BENCH_<name>.json next to the tables (schema: Peertrust_obs.Registry). *)
let with_metrics dir name f =
  Pobs.Obs.reset_metrics ();
  f ();
  let file = Filename.concat dir ("BENCH_" ^ name ^ ".json") in
  (* Histograms that recorded nothing are registration noise (every linked
     subsystem registers its instruments at module init): drop them from
     the artifact rather than pinning empty series into the baselines. *)
  let snapshot =
    let s = Pobs.Obs.snapshot () in
    {
      s with
      Pobs.Registry.sn_histograms =
        List.filter
          (fun (_, h) -> h.Pobs.Metric.hs_count > 0)
          s.Pobs.Registry.sn_histograms;
    }
  in
  (try Pobs.Export.write_metrics_json ~label:name file snapshot
   with Sys_error reason ->
     Printf.eprintf "error: cannot write metrics (%s)\n" reason;
     exit 1);
  Printf.printf "  metrics: %s\n" file;
  flush stdout

let () =
  let rec split_args dir acc = function
    | [] -> (dir, List.rev acc)
    | "--metrics-dir" :: d :: rest -> split_args (Some d) acc rest
    | "--smoke" :: rest ->
        resolution_smoke := true;
        adversary_smoke := true;
        recursion_smoke := true;
        crash_smoke := true;
        split_args dir acc rest
    | "--kb-size" :: n :: rest ->
        (match int_of_string_opt n with
        | Some v when v > 0 -> resolution_kb_size := Some v
        | Some _ | None ->
            Printf.eprintf "error: --kb-size expects a positive integer, got %S\n" n;
            exit 2);
        split_args dir acc rest
    | a :: rest -> split_args dir (a :: acc) rest
  in
  match List.tl (Array.to_list Sys.argv) with
  | "diff" :: rest -> run_diff rest
  | raw_args ->
  let dir, args = split_args None [] raw_args in
  let dir = Option.value dir ~default:"." in
  match args with
  | [] ->
      Printf.printf "PeerTrust benchmark harness — all experiments\n";
      List.iter (fun (name, f) -> with_metrics dir name f) experiments
  | [ "micro" ] -> micro ()
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt (String.lowercase_ascii name) experiments with
          | Some f -> with_metrics dir (String.lowercase_ascii name) f
          | None ->
              if name = "micro" then micro ()
              else begin
                Printf.eprintf "unknown experiment %S\n" name;
                exit 1
              end)
        names

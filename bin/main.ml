(* The peertrust command-line tool.

   Subcommands:
     parse      check and pretty-print a policy program, with lint warnings
     eval       evaluate a query against a program (backward chaining)
     forward    saturate a program (forward chaining) and print the facts
     negotiate  run a trust negotiation between peers loaded from files
     scenario   run one of the paper's built-in scenarios
     trace      reconstruct cross-peer timelines from a span log
*)

open Cmdliner
module Dlp = Peertrust_dlp
module Pobs = Peertrust_obs
open Peertrust

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable debug logging.")

(* ------------------------------------------------------------------ *)
(* Observability plumbing shared by negotiate and scenario *)

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write a metrics JSON snapshot of the run here.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write a JSONL span log of the run here (input format of the \
           trace subcommand).")

let trace_chrome_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-chrome" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON of the run here (loadable in \
           chrome://tracing or Perfetto).")

let trace_causal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-causal" ] ~docv:"FILE"
        ~doc:
          "Write a flat causal JSONL stream here: one record per span \
           start, point event and span end, in tick order.")

(* Reset the global metrics, install a tracer on the session clock when
   spans are wanted (a trace file or -v), and return the finaliser that
   writes the artifacts and, under -v, renders the span tree. *)
let setup_obs ~verbose ~metrics_out ~trace_out ?trace_chrome ?trace_causal
    session =
  Pobs.Obs.reset_metrics ();
  let tracing =
    verbose || trace_out <> None || trace_chrome <> None
    || trace_causal <> None
  in
  if tracing then begin
    let clock = Peertrust_net.Network.clock session.Session.network in
    Pobs.Obs.set_tracer
      (Pobs.Tracer.create ~now:(fun () -> Peertrust_net.Clock.now clock) ())
  end;
  fun () ->
    let spans = Pobs.Obs.spans () in
    let write what file f =
      try f file
      with Sys_error reason ->
        Printf.eprintf "error: cannot write %s to %s (%s)\n" what file reason;
        exit 1
    in
    Option.iter
      (fun file ->
        write "trace" file (fun file ->
            Pobs.Export.write_spans_jsonl file spans);
        Printf.printf "trace: %d span(s) written to %s\n" (List.length spans)
          file)
      trace_out;
    Option.iter
      (fun file ->
        write "chrome trace" file (fun file ->
            Pobs.Export.write_spans_chrome file spans);
        Printf.printf "chrome trace written to %s\n" file)
      trace_chrome;
    Option.iter
      (fun file ->
        write "causal stream" file (fun file ->
            Pobs.Export.write_spans_causal file spans);
        Printf.printf "causal stream written to %s\n" file)
      trace_causal;
    Option.iter
      (fun file ->
        write "metrics" file (fun file ->
            Pobs.Export.write_metrics_json file (Pobs.Obs.snapshot ()));
        Printf.printf "metrics written to %s\n" file)
      metrics_out;
    if verbose && spans <> [] then begin
      print_endline "spans:";
      print_string (Pobs.Export.span_tree spans)
    end;
    Pobs.Obs.disable_tracing ()

(* ------------------------------------------------------------------ *)
(* Fault-injection flags shared by negotiate and scenario *)

type fault_opts = {
  fo_seed : int option;
  fo_drop : float;
  fo_duplicate : float;
  fo_delay : float;
  fo_delay_max : int;
  fo_reorder : float;
  fo_outages : (string * int * int) list;
  fo_crashes : (string * int * int) list;
  fo_journal : string option;
  fo_queued : bool;
}

let fault_opts_term =
  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-seed" ] ~docv:"N"
          ~doc:
            "Seed for the deterministic fault plan; required by the \
             probability flags below.")
  in
  let prob name doc =
    Arg.(value & opt float 0. & info [ name ] ~docv:"P" ~doc)
  in
  let drop = prob "drop" "Per-message drop probability in [0,1]." in
  let duplicate = prob "duplicate" "Per-message duplication probability." in
  let delay = prob "delay" "Per-message extra-delay probability." in
  let delay_max =
    Arg.(
      value & opt int 4
      & info [ "delay-max" ] ~docv:"TICKS"
          ~doc:"Maximum extra delivery delay in simulated ticks.")
  in
  let reorder = prob "reorder" "Per-message reordering probability." in
  let outage_conv =
    let parse s =
      match String.split_on_char ':' s with
      | [ peer; a; b ] -> (
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some f, Some u when 0 <= f && f <= u -> Ok (peer, f, u)
          | _ -> Error (`Msg "expected PEER:FROM:UNTIL with 0 <= FROM <= UNTIL")
          )
      | _ -> Error (`Msg "expected PEER:FROM:UNTIL")
    in
    Arg.conv (parse, fun fmt (p, f, u) -> Format.fprintf fmt "%s:%d:%d" p f u)
  in
  let outages =
    Arg.(
      value
      & opt_all outage_conv []
      & info [ "outage" ] ~docv:"PEER:FROM:UNTIL"
          ~doc:
            "Make PEER unreachable for the simulated-clock window \
             [FROM,UNTIL) (repeatable).")
  in
  let crash_conv =
    let parse s =
      match String.split_on_char ':' s with
      | [ peer; a ] -> (
          match int_of_string_opt a with
          | Some at when at >= 0 -> Ok (peer, at, max_int)
          | _ -> Error (`Msg "expected PEER:TICK[:RESTART] with TICK >= 0"))
      | [ peer; a; b ] -> (
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some at, Some r when 0 <= at && at < r -> Ok (peer, at, r)
          | _ ->
              Error (`Msg "expected PEER:TICK[:RESTART] with 0 <= TICK < RESTART")
          )
      | _ -> Error (`Msg "expected PEER:TICK[:RESTART]")
    in
    Arg.conv
      ( parse,
        fun fmt (p, a, r) ->
          if r = max_int then Format.fprintf fmt "%s:%d" p a
          else Format.fprintf fmt "%s:%d:%d" p a r )
  in
  let crashes =
    Arg.(
      value
      & opt_all crash_conv []
      & info [ "crash" ] ~docv:"PEER:TICK[:RESTART]"
          ~doc:
            "Crash-stop PEER at simulated tick TICK, wiping its volatile \
             state; with RESTART it comes back at that tick under a new \
             incarnation (repeatable).")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"DIR"
          ~doc:
            "Keep per-peer write-ahead journals under DIR (created on \
             demand) and replay them at restart, so crashed peers recover \
             learned credentials and unfinished goals; implies the queued \
             engine.")
  in
  let queued =
    Arg.(
      value & flag
      & info [ "queued" ]
          ~doc:
            "Run over the queued (reactor) engine even without faults; \
             implied by any fault flag.")
  in
  let make fo_seed fo_drop fo_duplicate fo_delay fo_delay_max fo_reorder
      fo_outages fo_crashes fo_journal fo_queued =
    {
      fo_seed;
      fo_drop;
      fo_duplicate;
      fo_delay;
      fo_delay_max;
      fo_reorder;
      fo_outages;
      fo_crashes;
      fo_journal;
      fo_queued;
    }
  in
  Term.(
    const make $ seed $ drop $ duplicate $ delay $ delay_max $ reorder
    $ outages $ crashes $ journal $ queued)

(* ------------------------------------------------------------------ *)
(* Guard and adversary flags shared by negotiate and scenario *)

type guard_opts = {
  go_on : bool;
  go_rate : int option;
  go_quota : int option;
  go_quarantine : int option;
}

let guard_opts_term =
  let on =
    Arg.(
      value & flag
      & info [ "guard" ]
          ~doc:
            "Enable the inbound guard layer at every peer: payload checks, \
             per-requester rate limits and work quotas, and a quarantine \
             circuit breaker (implies the queued engine; implied by \
             --rate/--quota/--quarantine).")
  in
  let rate =
    Arg.(
      value
      & opt (some int) None
      & info [ "rate" ] ~docv:"N"
          ~doc:
            "Queries admitted per requester per rate window (implies \
             --guard).")
  in
  let quota =
    Arg.(
      value
      & opt (some int) None
      & info [ "quota" ] ~docv:"STEPS"
          ~doc:
            "Resolution steps a requester may burn at a peer over the whole \
             run (implies --guard).")
  in
  let quarantine =
    Arg.(
      value
      & opt (some int) None
      & info [ "quarantine" ] ~docv:"TICKS"
          ~doc:
            "Quarantine duration once a requester trips the breaker \
             (implies --guard).")
  in
  let make go_on go_rate go_quota go_quarantine =
    { go_on; go_rate; go_quota; go_quarantine }
  in
  Term.(const make $ on $ rate $ quota $ quarantine)

let guard_requested o =
  o.go_on || o.go_rate <> None || o.go_quota <> None || o.go_quarantine <> None

let resolve_guard o =
  if not (guard_requested o) then Guard.permissive
  else
    let d = Guard.defaults in
    {
      d with
      Guard.rate = Option.value ~default:d.Guard.rate o.go_rate;
      quota = Option.value ~default:d.Guard.quota o.go_quota;
      quarantine_ticks =
        Option.value ~default:d.Guard.quarantine_ticks o.go_quarantine;
    }

let adversary_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "adversary" ] ~docv:"PEER:BEHAVIORS"
        ~doc:
          "Attach a misbehaving peer, e.g. mallory:flood,malformed or \
           trudy:bomb=40 (repeatable; implies the queued engine).  \
           Behaviors: flood[=N], malformed[=N], unsolicited[=N], replay, \
           forged, oversized[=BYTES], bomb[=DEPTH].")

let parse_adversaries specs =
  List.mapi
    (fun i spec ->
      match String.index_opt spec ':' with
      | None ->
          Printf.eprintf
            "bad --adversary %S (expected PEER:BEHAVIOR[,BEHAVIOR...])\n" spec;
          exit 1
      | Some j ->
          let name = String.sub spec 0 j in
          let behaviors =
            String.sub spec (j + 1) (String.length spec - j - 1)
            |> String.split_on_char ','
            |> List.map (fun b ->
                   match Peertrust_net.Adversary.behavior_of_string b with
                   | Ok b -> b
                   | Error msg ->
                       Printf.eprintf "bad --adversary %S: %s\n" spec msg;
                       exit 1)
          in
          Peertrust_net.Adversary.create
            ~seed:(Int64.of_int (i + 1))
            ~name behaviors)
    specs

(* Post-run guard/adversary accounting, printed whenever either feature
   was on (reads the same metrics registry setup_obs resets). *)
let print_guard_summary ~guarded ~adversaries () =
  if guarded || adversaries <> [] then begin
    let snapshot = Pobs.Obs.snapshot () in
    let c name = Pobs.Registry.counter_value snapshot name in
    Printf.printf
      "guard: %d admitted, %d rejected, %d stale, %d quarantine(s), %d \
       recovery(ies)\n"
      (c "guard.admitted") (c "guard.rejected") (c "guard.stale")
      (c "guard.quarantines") (c "guard.recoveries");
    if adversaries <> [] then
      Printf.printf "adversary: %d action(s) sent by %d peer(s)\n"
        (c "adversary.actions")
        (List.length adversaries)
  end

(* ------------------------------------------------------------------ *)
(* Answer-cache flags shared by negotiate and scenario *)

type cache_opts = { co_on : bool; co_off : bool; co_ttl : int }

let cache_opts_term =
  let cache =
    Arg.(
      value & flag
      & info [ "cache" ]
          ~doc:
            "Enable the cross-negotiation answer cache (implies the queued \
             reactor engine).")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Explicitly disable the answer cache (overrides --cache).")
  in
  let ttl =
    Arg.(
      value & opt int 1024
      & info [ "cache-ttl" ] ~docv:"TICKS"
          ~doc:"Lifetime of cached answers in simulated clock ticks.")
  in
  let make co_on co_off co_ttl = { co_on; co_off; co_ttl } in
  Term.(const make $ cache $ no_cache $ ttl)

(* The cache requested by the flags; [--no-cache] wins over [--cache]. *)
let resolve_cache o =
  if o.co_on && not o.co_off then
    try Some (Answer_cache.create ~ttl:o.co_ttl ())
    with Invalid_argument msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  else None

(* Distributed-tabling flag shared by negotiate and scenario *)

let tabling_arg =
  Arg.(
    value & flag
    & info [ "tabling" ]
        ~doc:
          "Evaluate goals through the distributed tabling engine (implies \
           the queued reactor engine): one table per goal at its owning \
           peer, with GEM-style termination detection, so mutually \
           recursive cross-peer policies terminate with their complete \
           answer sets.")

(* The reactor configuration implied by the cache, tabling and journal
   flags; [None] leaves engine selection to the default (byte-identical)
   path. *)
let reactor_config ~cache ~tabling ~journal =
  let journal =
    match journal with
    | Some dir -> Reactor.Journal_dir dir
    | None -> Reactor.Journal_off
  in
  if cache = None && (not tabling) && journal = Reactor.Journal_off then None
  else
    Some { Reactor.default_config with Reactor.cache = cache; tabling; journal }

let print_cache_summary =
  Option.iter (fun c ->
      Printf.printf "cache: %d hit(s), %d miss(es), %d entr%s, %d eviction(s), %d invalidation(s)\n"
        (Answer_cache.hits c) (Answer_cache.misses c) (Answer_cache.length c)
        (if Answer_cache.length c = 1 then "y" else "ies")
        (Answer_cache.evictions c)
        (Answer_cache.invalidations c))

(* Install the requested fault plan on the session network.  Returns
   [true] when the run should go through the queued (reactor) engine —
   i.e. when any fault is configured or --queued was passed. *)
let install_faults session o =
  let has_rates =
    o.fo_drop > 0. || o.fo_duplicate > 0. || o.fo_delay > 0.
    || o.fo_reorder > 0.
  in
  let plan =
    match o.fo_seed with
    | Some seed -> (
        try
          Peertrust_net.Faults.create ~drop:o.fo_drop
            ~duplicate:o.fo_duplicate ~delay:o.fo_delay
            ~delay_max:o.fo_delay_max ~reorder:o.fo_reorder
            ~seed:(Int64.of_int seed) ()
        with Invalid_argument msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 1)
    | None ->
        if has_rates then begin
          Printf.eprintf
            "error: --drop/--duplicate/--delay/--reorder require \
             --fault-seed\n";
          exit 1
        end;
        Peertrust_net.Faults.none ()
  in
  List.iter
    (fun (peer, from_tick, until_tick) ->
      Peertrust_net.Faults.add_outage plan ~peer ~from_tick ~until_tick)
    o.fo_outages;
  (try
     List.iter
       (fun (peer, at_tick, restart_tick) ->
         Peertrust_net.Faults.add_crash plan ~peer ~at_tick ~restart_tick)
       o.fo_crashes
   with Invalid_argument msg ->
     Printf.eprintf "error: %s\n" msg;
     exit 1);
  let active = not (Peertrust_net.Faults.is_none plan) in
  if active then Peertrust_net.Network.set_faults session.Session.network plan;
  active || o.fo_queued || o.fo_journal <> None

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let handle_syntax_errors f =
  try f () with
  | Dlp.Parser.Error (msg, line, col) ->
      Printf.eprintf "syntax error at %d:%d: %s\n" line col msg;
      exit 1
  | Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1

(* ------------------------------------------------------------------ *)
(* Arguments *)

let program_file =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Policy program file.")

let self_arg =
  Arg.(
    value & opt string "self"
    & info [ "self" ] ~docv:"NAME" ~doc:"Name of the local peer.")

let query_arg ~pos_index =
  Arg.(
    required
    & pos pos_index (some string) None
    & info [] ~docv:"QUERY" ~doc:"Goal conjunction, e.g. 'p(X), q(X)'.")

(* ------------------------------------------------------------------ *)
(* parse *)

let parse_cmd =
  let run file =
    handle_syntax_errors @@ fun () ->
    let rules = Dlp.Program.parse (read_file file) in
    print_endline (Dlp.Program.to_string rules);
    let warnings = Dlp.Program.check rules in
    List.iter
      (fun w -> Format.eprintf "warning: %a@." Dlp.Program.pp_warning w)
      warnings;
    Printf.printf "%% %d rule(s), %d warning(s)\n" (List.length rules)
      (List.length warnings)
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Parse, lint and pretty-print a policy program.")
    Term.(const run $ program_file)

(* ------------------------------------------------------------------ *)
(* eval *)

let eval_cmd =
  let run file self query max_solutions engine =
    handle_syntax_errors @@ fun () ->
    let kb = Dlp.Kb.of_string (read_file file) in
    let goals = Dlp.Parser.parse_query query in
    let answers =
      match engine with
      | "sld" ->
          let options = { Dlp.Sld.default_options with max_solutions } in
          Dlp.Sld.answers ~options ~self kb goals
      | "tabled" ->
          (try Dlp.Tabled.solve ~self kb goals
           with Dlp.Tabled.Unsupported msg ->
             Printf.eprintf "tabled: %s\n" msg;
             exit 1)
      | other ->
          Printf.eprintf "unknown engine %S (sld or tabled)\n" other;
          exit 1
    in
    if answers = [] then print_endline "no."
    else
      List.iter
        (fun s ->
          if Dlp.Subst.is_empty s then print_endline "yes."
          else print_endline (Dlp.Subst.to_string s))
        answers
  in
  let max_solutions =
    Arg.(
      value & opt int 32
      & info [ "n"; "max-solutions" ] ~docv:"N" ~doc:"Answer limit.")
  in
  let engine =
    Arg.(
      value & opt string "sld"
      & info [ "engine" ] ~docv:"E"
          ~doc:"Evaluation engine: sld (depth-first) or tabled.")
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate a query with backward chaining.")
    Term.(const run $ program_file $ self_arg $ query_arg ~pos_index:1
          $ max_solutions $ engine)

(* ------------------------------------------------------------------ *)
(* forward *)

let forward_cmd =
  let run file self =
    handle_syntax_errors @@ fun () ->
    let kb = Dlp.Kb.of_string (read_file file) in
    let result = Dlp.Forward.saturate ~self kb in
    List.iter
      (fun l -> print_endline (Dlp.Literal.to_string l))
      result.Dlp.Forward.facts;
    Printf.printf "%% %d fact(s), %d derived, %d round(s)\n"
      (List.length result.Dlp.Forward.facts)
      result.Dlp.Forward.derived result.Dlp.Forward.rounds
  in
  Cmd.v
    (Cmd.info "forward" ~doc:"Saturate a program with forward chaining.")
    Term.(const run $ program_file $ self_arg)

(* ------------------------------------------------------------------ *)
(* negotiate *)

let negotiate_cmd =
  let run verbose peer_specs requester target goal strategy show_transcript
      narrative mermaid wallet save_wallet save_world metrics_out trace_out
      trace_chrome trace_causal fault_opts cache_opts guard_opts
      adversary_specs tabling =
    setup_logs verbose;
    handle_syntax_errors @@ fun () ->
    let guarded = guard_requested guard_opts in
    let session =
      Session.create
        ~config:
          { Session.default_config with Session.guard = resolve_guard guard_opts }
        ()
    in
    List.iter
      (fun spec ->
        match String.index_opt spec '=' with
        | None ->
            Printf.eprintf "bad --peer %S (expected name=file)\n" spec;
            exit 1
        | Some i ->
            let name = String.sub spec 0 i in
            let file = String.sub spec (i + 1) (String.length spec - i - 1) in
            ignore (Session.add_peer session ~program:(read_file file) name))
      peer_specs;
    Engine.attach_all session;
    (* Import a credential wallet into the requester. *)
    Option.iter
      (fun file ->
        match Peertrust_crypto.Wire.decode_many (read_file file) with
        | Ok certs ->
            Engine.learn session (Session.peer session requester) certs
        | Error e ->
            Format.eprintf "wallet %s: %a@." file Peertrust_crypto.Wire.pp_error e;
            exit 1)
      wallet;
    let strategy =
      match strategy with
      | "relevant" -> Strategy.Relevant
      | "eager" -> Strategy.Eager
      | "push" | "push-relevant" -> Strategy.Push_relevant
      | other ->
          Printf.eprintf "unknown strategy %S\n" other;
          exit 1
    in
    let cache = resolve_cache cache_opts in
    let adversaries = parse_adversaries adversary_specs in
    let queued =
      install_faults session fault_opts
      || cache <> None || tabling || guarded || adversaries <> []
    in
    let finish_obs =
      setup_obs ~verbose ~metrics_out ~trace_out ?trace_chrome ?trace_causal
        session
    in
    let report =
      (* Faulted (cached, tabled, guarded, adversarial) runs go through
         the queued reactor (the engine with retransmission, timeouts and
         the inbound guard); it negotiates relevant-style. *)
      if queued then
        Reactor.negotiate
          ?config:(reactor_config ~cache ~tabling ~journal:fault_opts.fo_journal)
          ~adversaries session ~requester ~target
          (Dlp.Parser.parse_literal goal)
      else Strategy.negotiate_str session ~strategy ~requester ~target goal
    in
    Format.printf "%a@." Negotiation.pp_report report;
    print_cache_summary cache;
    print_guard_summary ~guarded ~adversaries ();
    if narrative then print_endline (Explain.narrative report);
    if mermaid then print_string (Explain.sequence_diagram report);
    if show_transcript then
      List.iter
        (fun e ->
          Format.printf "[%4d] %s -> %s: %s@." e.Peertrust_net.Network.time
            e.Peertrust_net.Network.from e.Peertrust_net.Network.target
            e.Peertrust_net.Network.summary)
        report.Negotiation.transcript;
    (* Export the requester's credentials (own plus acquired). *)
    Option.iter
      (fun file ->
        let peer = Session.peer session requester in
        let certs = Hashtbl.fold (fun _ c acc -> c :: acc) peer.Peer.certs [] in
        let oc = open_out file in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc (Peertrust_crypto.Wire.encode_many certs));
        Printf.printf "wallet: %d certificate(s) written to %s\n"
          (List.length certs) file)
      save_wallet;
    Option.iter
      (fun dir ->
        Persist.save session ~dir;
        Printf.printf "world saved to %s\n" dir)
      save_world;
    finish_obs ();
    exit (if Negotiation.succeeded report then 0 else 2)
  in
  let peers =
    Arg.(
      non_empty
      & opt_all string []
      & info [ "p"; "peer" ] ~docv:"NAME=FILE"
          ~doc:"Add a peer with the given policy program (repeatable).")
  in
  let requester =
    Arg.(
      required
      & opt (some string) None
      & info [ "requester" ] ~docv:"NAME" ~doc:"Requesting peer.")
  in
  let target =
    Arg.(
      required
      & opt (some string) None
      & info [ "target" ] ~docv:"NAME" ~doc:"Peer owning the resource.")
  in
  let goal =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"GOAL" ~doc:"Requested literal.")
  in
  let strategy =
    Arg.(
      value & opt string "relevant"
      & info [ "strategy" ] ~docv:"S"
          ~doc:"Negotiation strategy: relevant, eager or push-relevant.")
  in
  let transcript =
    Arg.(value & flag & info [ "transcript" ] ~doc:"Print the message log.")
  in
  let narrative =
    Arg.(
      value & flag
      & info [ "narrative" ] ~doc:"Print a prose account of the negotiation.")
  in
  let mermaid =
    Arg.(
      value & flag
      & info [ "mermaid" ] ~doc:"Print a Mermaid sequence diagram.")
  in
  let save_world =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-world" ] ~docv:"DIR"
          ~doc:"Save the post-negotiation world (programs + wallets) here.")
  in
  let wallet =
    Arg.(
      value
      & opt (some file) None
      & info [ "wallet" ] ~docv:"FILE"
          ~doc:"Import this credential wallet into the requester first.")
  in
  let save_wallet =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-wallet" ] ~docv:"FILE"
          ~doc:"Write the requester's credentials (own and acquired) here.")
  in
  Cmd.v
    (Cmd.info "negotiate" ~doc:"Run a trust negotiation between peers.")
    Term.(
      const run $ verbose_arg $ peers $ requester $ target $ goal $ strategy
      $ transcript $ narrative $ mermaid $ wallet $ save_wallet $ save_world
      $ metrics_out_arg $ trace_out_arg $ trace_chrome_arg $ trace_causal_arg
      $ fault_opts_term $ cache_opts_term $ guard_opts_term $ adversary_arg
      $ tabling_arg)

(* ------------------------------------------------------------------ *)
(* world: negotiate inside a saved world directory *)

let world_cmd =
  let run verbose dir requester target goal save =
    setup_logs verbose;
    handle_syntax_errors @@ fun () ->
    match Persist.load ~dir () with
    | Error e ->
        Format.eprintf "%a@." Persist.pp_error e;
        exit 1
    | Ok session -> (
        match goal with
        | None ->
            (* Just describe the world. *)
            List.iter
              (fun name ->
                let peer = Session.peer session name in
                Printf.printf "%s: %d rule(s), %d certificate(s)\n" name
                  (Dlp.Kb.size peer.Peer.kb)
                  (Hashtbl.length peer.Peer.certs))
              (Session.peer_names session)
        | Some goal ->
            let required what = function
              | Some v -> v
              | None ->
                  Printf.eprintf "--%s required with a goal\n" what;
                  exit 1
            in
            let requester = required "requester" requester in
            let target = required "target" target in
            let report =
              Negotiation.request_str session ~requester ~target goal
            in
            Format.printf "%a@." Negotiation.pp_report report;
            Option.iter
              (fun out ->
                Persist.save session ~dir:out;
                Printf.printf "world saved to %s\n" out)
              save;
            exit (if Negotiation.succeeded report then 0 else 2))
  in
  let dir =
    Arg.(
      required
      & opt (some dir) None
      & info [ "dir" ] ~docv:"DIR" ~doc:"World directory (see --save-world).")
  in
  let requester =
    Arg.(
      value
      & opt (some string) None
      & info [ "requester" ] ~docv:"NAME" ~doc:"Requesting peer.")
  in
  let target =
    Arg.(
      value
      & opt (some string) None
      & info [ "target" ] ~docv:"NAME" ~doc:"Peer owning the resource.")
  in
  let goal =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"GOAL" ~doc:"Requested literal (omit to describe).")
  in
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"DIR" ~doc:"Save the updated world here.")
  in
  Cmd.v
    (Cmd.info "world"
       ~doc:"Inspect a saved world, or run a negotiation inside it.")
    Term.(const run $ verbose_arg $ dir $ requester $ target $ goal $ save)

(* ------------------------------------------------------------------ *)
(* analyze *)

let analyze_cmd =
  let run peer_specs goal_spec critical =
    handle_syntax_errors @@ fun () ->
    let world =
      List.map
        (fun spec ->
          match String.index_opt spec '=' with
          | None ->
              Printf.eprintf "bad --peer %S (expected name=file)\n" spec;
              exit 1
          | Some i ->
              let name = String.sub spec 0 i in
              let file = String.sub spec (i + 1) (String.length spec - i - 1) in
              (name, read_file file))
        peer_specs
      |> Analysis.world_of_programs
    in
    let report = Analysis.analyze world in
    Format.printf "%a" Analysis.pp_report report;
    match goal_spec with
    | None -> ()
    | Some spec -> (
        match String.index_opt spec ':' with
        | None ->
            Printf.eprintf "bad --goal %S (expected owner:literal)\n" spec;
            exit 1
        | Some i ->
            let owner = String.sub spec 0 i in
            let goal =
              Dlp.Parser.parse_literal
                (String.sub spec (i + 1) (String.length spec - i - 1))
            in
            let ok = Analysis.may_succeed world ~owner ~goal in
            Format.printf "goal %a at %s: %s@." Dlp.Literal.pp goal owner
              (if ok then "may succeed" else "cannot succeed");
            if critical then
              List.iter
                (fun (holder, cred) ->
                  Format.printf "critical: %s holds %a@." holder Dlp.Rule.pp
                    cred)
                (Analysis.critical_credentials world ~owner ~goal);
            exit (if ok then 0 else 2))
  in
  let peers =
    Arg.(
      non_empty
      & opt_all string []
      & info [ "p"; "peer" ] ~docv:"NAME=FILE"
          ~doc:"Add a peer program to the analysed world (repeatable).")
  in
  let goal =
    Arg.(
      value
      & opt (some string) None
      & info [ "goal" ] ~docv:"OWNER:LITERAL"
          ~doc:"Also decide reachability of this goal at that owner.")
  in
  let critical =
    Arg.(
      value & flag
      & info [ "critical" ]
          ~doc:
            "With --goal: list the credentials whose refusal alone would \
             make the negotiation fail.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Static negotiation analysis: which guarded resources can unlock, \
          which are deadlocked.")
    Term.(const run $ peers $ goal $ critical)

(* ------------------------------------------------------------------ *)
(* scenario *)

let scenario_cmd =
  let run verbose name metrics_out trace_out trace_chrome trace_causal
      fault_opts cache_opts guard_opts adversary_specs repeat tabling =
    setup_logs verbose;
    if repeat < 1 then begin
      Printf.eprintf "error: --repeat must be >= 1\n";
      exit 1
    end;
    let guarded = guard_requested guard_opts in
    let session_config =
      { Session.default_config with Session.guard = resolve_guard guard_opts }
    in
    let show (r : Negotiation.report) =
      Format.printf "%a@." Negotiation.pp_report r;
      List.iter
        (fun e ->
          Format.printf "[%4d] %s -> %s: %s@." e.Peertrust_net.Network.time
            e.Peertrust_net.Network.from e.Peertrust_net.Network.target
            e.Peertrust_net.Network.summary)
        r.Negotiation.transcript
    in
    let session, goals =
      match name with
      | "elearn" ->
          let s = Scenario.scenario1 ~config:session_config () in
          ( s.Scenario.s1_session,
            [ ("Alice", "E-Learn", Scenario.scenario1_goal ()) ] )
      | "services" ->
          let s = Scenario.scenario2 ~config:session_config () in
          ( s.Scenario.s2_session,
            [
              ("Bob", "E-Learn", Scenario.scenario2_goal_free ());
              ("Bob", "E-Learn", Scenario.scenario2_goal_paid ());
            ] )
      | "accreditation" ->
          let rw =
            Scenario.mutual_accreditation ~config:session_config ()
          in
          ( rw.Scenario.rw_session,
            [
              ( rw.Scenario.rw_requester,
                rw.Scenario.rw_target,
                rw.Scenario.rw_goal );
            ] )
      | "federation" ->
          let rw = Scenario.federation ~config:session_config () in
          ( rw.Scenario.rw_session,
            [
              ( rw.Scenario.rw_requester,
                rw.Scenario.rw_target,
                rw.Scenario.rw_goal );
            ] )
      | other ->
          Printf.eprintf
            "unknown scenario %S (try elearn, services, accreditation or \
             federation)\n"
            other;
          exit 1
    in
    (* One cache shared by every goal (and every --repeat pass): later
       negotiations run warm. *)
    let cache = resolve_cache cache_opts in
    let adversaries = parse_adversaries adversary_specs in
    let queued =
      install_faults session fault_opts
      || cache <> None || tabling || guarded || adversaries <> []
    in
    let config =
      reactor_config ~cache ~tabling ~journal:fault_opts.fo_journal
    in
    let finish_obs =
      setup_obs ~verbose ~metrics_out ~trace_out ?trace_chrome ?trace_causal
        session
    in
    Fun.protect ~finally:finish_obs (fun () ->
        for pass = 1 to repeat do
          if repeat > 1 then Printf.printf "%% pass %d\n" pass;
          List.iter
            (fun (requester, target, goal) ->
              show
                (if queued then
                   Reactor.negotiate ?config ~adversaries session ~requester
                     ~target goal
                 else Negotiation.request session ~requester ~target goal))
            goals
        done;
        print_cache_summary cache;
        print_guard_summary ~guarded ~adversaries ())
  in
  let scenario_name =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME"
          ~doc:
            "Scenario name: elearn, services, accreditation (a cyclic \
             mutual-accreditation pair — pass --tabling to complete it) \
             or federation (chained accreditation rings).")
  in
  let repeat =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"N"
          ~doc:
            "Run the scenario's goal sequence N times over one session \
             (with --cache, later passes run warm).")
  in
  Cmd.v
    (Cmd.info "scenario" ~doc:"Run one of the paper's built-in scenarios.")
    Term.(
      const run $ verbose_arg $ scenario_name $ metrics_out_arg
      $ trace_out_arg $ trace_chrome_arg $ trace_causal_arg $ fault_opts_term
      $ cache_opts_term $ guard_opts_term $ adversary_arg $ repeat
      $ tabling_arg)

(* ------------------------------------------------------------------ *)
(* trace: reconstruct cross-peer timelines from a span log *)

let trace_cmd =
  let run file trace_id json chrome_out causal_out =
    let text =
      try read_file file
      with Sys_error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
    in
    match Pobs.Export.spans_of_jsonl text with
    | Error msg ->
        Printf.eprintf "error: %s: %s\n" file msg;
        exit 1
    | Ok spans ->
        let write what out f =
          try f out
          with Sys_error reason ->
            Printf.eprintf "error: cannot write %s to %s (%s)\n" what out
              reason;
            exit 1
        in
        Option.iter
          (fun out ->
            write "chrome trace" out (fun out ->
                Pobs.Export.write_spans_chrome out spans);
            Printf.printf "chrome trace written to %s\n" out)
          chrome_out;
        Option.iter
          (fun out ->
            write "causal stream" out (fun out ->
                Pobs.Export.write_spans_causal out spans);
            Printf.printf "causal stream written to %s\n" out)
          causal_out;
        let timelines = Pobs.Timeline.build spans in
        let timelines =
          match trace_id with
          | None -> timelines
          | Some id ->
              List.filter
                (fun tl -> tl.Pobs.Timeline.tl_trace = id)
                timelines
        in
        if timelines = [] then begin
          (match trace_id with
          | Some id -> Printf.eprintf "error: no trace %d in %s\n" id file
          | None ->
              Printf.eprintf "error: no traced spans in %s (%d span(s))\n"
                file (List.length spans));
          exit 1
        end;
        if json then
          print_endline
            (Pobs.Json.to_string
               (Pobs.Json.List (List.map Pobs.Timeline.to_json timelines)))
        else
          List.iter
            (fun tl -> print_string (Pobs.Timeline.to_string tl))
            timelines
  in
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Span log written by --trace-out (JSONL).")
  in
  let trace_id =
    Arg.(
      value
      & opt (some int) None
      & info [ "trace" ] ~docv:"ID"
          ~doc:"Only render the timeline of this trace id.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the timelines as JSON instead of text.")
  in
  let chrome_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome-out" ] ~docv:"FILE"
          ~doc:"Also convert the log to Chrome trace_event JSON here.")
  in
  let causal_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "causal-out" ] ~docv:"FILE"
          ~doc:"Also convert the log to a flat causal JSONL stream here.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Reconstruct cross-peer negotiation timelines — per-peer lanes, \
          critical path, latency breakdown and anomaly flags — from a span \
          log.")
    Term.(const run $ file $ trace_id $ json $ chrome_out $ causal_out)

let () =
  let info =
    Cmd.info "peertrust" ~version:"1.0.0"
      ~doc:"Automated trust negotiation with distributed logic programs."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            parse_cmd; eval_cmd; forward_cmd; negotiate_cmd; analyze_cmd;
            world_cmd; scenario_cmd; trace_cmd;
          ]))

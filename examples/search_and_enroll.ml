(* The full ELENA pipeline from the paper's introduction: Edutella-style
   metadata search over RDF course descriptions, followed by a trust
   negotiation for the chosen course.

   1. Two providers publish course metadata (RDF registries, released
      publicly through QEL).
   2. A learner broadcasts a query for affordable courses.
   3. She picks the cheapest hit and negotiates enrolment — the provider
      demands a student credential, which she releases only to
      accredited providers.

     dune exec examples/search_and_enroll.exe
*)

open Peertrust
module Dlp = Peertrust_dlp
module Rdf = Peertrust_rdf

let provider_policy =
  {|
    % Enrolment for students (proof requested from the requester); the
    % outcome is releasable to the enrollee.
    enroll(Course, Party) $ Requester = Party <-{true}
      price(Course, P), student(Party) @ "UIUC" @ Party.

    % Accreditation credential, shown to anyone.
    accredited(Self) @ "Agency" $ true signedBy ["Agency"].
  |}

let learner_program =
  {|
    student("lea") @ "UIUC" signedBy ["UIUC"].
    student(X) @ Y $ accredited(Requester) @ "Agency" @ Requester <-{true}
      student(X) @ Y.
  |}

let make_provider session name courses =
  let reg = Rdf.Registry.create () in
  List.iter
    (fun (id, price) -> Rdf.Registry.add_course reg ~id ~price ())
    courses;
  let program = Qel.searchable_program reg ^ provider_policy in
  ignore (Session.add_peer session ~program name)

let () =
  let session = Session.create () in
  make_provider session "courseware" [ ("spanish1", 900); ("french1", 2400) ];
  make_provider session "acme_learn" [ ("spanish2", 700); ("latin1", 5000) ];
  ignore (Session.add_peer session ~program:learner_program "lea");
  Engine.attach_all session;

  (* Step 1: metadata search across providers. *)
  let query = Qel.parse "C, P <- price(C, P), P < 1000" in
  Format.printf "Searching: %s@.@." (Qel.to_string query);
  let hits =
    Qel.search_all session ~requester:"lea"
      ~providers:[ "courseware"; "acme_learn" ] query
  in
  List.iter
    (fun (provider, rows) ->
      List.iter
        (fun row ->
          Format.printf "  %s offers %s@." provider
            (String.concat " at $" (List.map Dlp.Term.to_string row)))
        rows)
    hits;

  (* Step 2: pick the cheapest hit. *)
  let best =
    List.concat_map
      (fun (provider, rows) ->
        List.filter_map
          (function
            | [ Dlp.Term.Atom c; Dlp.Term.Int p ] ->
                Some (provider, Dlp.Sym.name c, p)
            | _ -> None)
          rows)
      hits
    |> List.sort (fun (_, _, a) (_, _, b) -> Int.compare a b)
    |> function
    | [] -> None
    | hit :: _ -> Some hit
  in
  match best with
  | None -> Format.printf "@.no affordable course found@."
  | Some (provider, course, price) ->
      Format.printf "@.Cheapest: %s at %s ($%d) — negotiating enrolment@.@."
        course provider price;
      let report =
        Negotiation.request_str session ~requester:"lea" ~target:provider
          (Printf.sprintf {|enroll(%s, "lea")|} course)
      in
      Format.printf "%a@.@." Negotiation.pp_report report;
      List.iter
        (fun e ->
          Format.printf "  [%d] %-10s -> %-10s %s@."
            e.Peertrust_net.Network.time e.Peertrust_net.Network.from
            e.Peertrust_net.Network.target e.Peertrust_net.Network.summary)
        report.Negotiation.transcript
